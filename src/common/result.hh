/**
 * @file
 * Recoverable-error plumbing for the untrusted-input decode path.
 *
 * Policy (see DESIGN.md "Error-handling policy"): anything that parses
 * bytes we did not produce in this process — image files, bitstreams,
 * index tables — must *return* a structured error instead of asserting,
 * so a flipped bit in flash yields a diagnosable rejection rather than
 * an abort. cps_assert/cps_panic remain reserved for internal
 * invariants (simulator bugs).
 */

#ifndef CPS_COMMON_RESULT_HH
#define CPS_COMMON_RESULT_HH

#include <optional>
#include <string>
#include <utility>

#include "logging.hh"
#include "types.hh"

namespace cps
{

/** Why a decode was rejected. */
enum class DecodeStatus
{
    Ok,        ///< no error (used by Result<void>)
    BadMagic,  ///< file does not start with the expected magic
    BadVersion, ///< recognised container, unsupported format version
    Truncated, ///< input ended before a declared field/section
    BadCrc,    ///< a section checksum did not match its payload
    BadHeader, ///< a header field is insane (misaligned, inconsistent)
    RangeError, ///< an index/offset points outside its table or region
    Malformed, ///< structurally invalid in some other diagnosed way
    SoftError, ///< uncorrectable in-memory corruption (ECC/CRC detect)
};

/** Short stable name for a status ("bad-crc", "truncated", ...). */
const char *decodeStatusName(DecodeStatus status);

/**
 * One structured decode failure: what went wrong and where.
 *
 * The position is kept in bits so bitstream-level failures (mid-codeword
 * underrun) stay exact; byte-granular layers just multiply by 8.
 */
struct DecodeError
{
    DecodeStatus status = DecodeStatus::Ok;
    u64 bitOffset = 0;   ///< absolute bit position of the failure
    std::string message; ///< human-readable diagnosis

    /** Byte position of the failure (bitOffset / 8). */
    u64 byteOffset() const { return bitOffset >> 3; }

    /** "bad-crc at byte 132: index table CRC mismatch ..." */
    std::string
    describe() const
    {
        return strfmt("%s at byte %llu (bit %llu): %s",
                      decodeStatusName(status),
                      static_cast<unsigned long long>(byteOffset()),
                      static_cast<unsigned long long>(bitOffset),
                      message.c_str());
    }
};

/** Builds a DecodeError from a byte position and printf arguments. */
DecodeError decodeErrorAtByte(DecodeStatus status, u64 byte_offset,
                              const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Builds a DecodeError from a bit position and printf arguments. */
DecodeError decodeErrorAtBit(DecodeStatus status, u64 bit_offset,
                             const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Either a value or a DecodeError. A deliberately small subset of
 * std::expected (which our toolchain baseline predates): construction
 * from T or DecodeError, ok()/operator bool, value(), error().
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(DecodeError error) : error_(std::move(error))
    {
        cps_assert(error_.status != DecodeStatus::Ok,
                   "error Result built with status Ok");
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        cps_assert(ok(), "Result::value() on error: %s",
                   error_.message.c_str());
        return *value_;
    }

    const T &
    value() const
    {
        cps_assert(ok(), "Result::value() on error: %s",
                   error_.message.c_str());
        return *value_;
    }

    /** The value, or @p fallback when this Result holds an error. */
    T
    valueOr(T fallback) const
    {
        return ok() ? *value_ : std::move(fallback);
    }

    const DecodeError &
    error() const
    {
        cps_assert(!ok(), "Result::error() on ok value");
        return error_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    std::optional<T> value_;
    DecodeError error_;
};

/** Result<void>: success carries no payload. */
template <>
class Result<void>
{
  public:
    Result() = default;
    Result(DecodeError error) : failed_(true), error_(std::move(error))
    {
        cps_assert(error_.status != DecodeStatus::Ok,
                   "error Result built with status Ok");
    }

    bool ok() const { return !failed_; }
    explicit operator bool() const { return ok(); }

    const DecodeError &
    error() const
    {
        cps_assert(failed_, "Result::error() on ok value");
        return error_;
    }

  private:
    bool failed_ = false;
    DecodeError error_;
};

} // namespace cps

#endif // CPS_COMMON_RESULT_HH
