/**
 * @file
 * Extension experiment: accounting for CodePack's individual design
 * choices, per benchmark:
 *
 *   - the 2-bit codeword for the low halfword 0 (vs spending a normal
 *     bank-0 codeword on it),
 *   - the raw-block escape (vs compressing expanding blocks anyway),
 *   - dictionary bank utilization (how full each bank is and what share
 *     of halfwords it captures).
 *
 * These are the "ablation benches for the design choices DESIGN.md
 * calls out".
 */

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "common/table.hh"
#include "common/threadpool.hh"
#include "harness/suite.hh"

using namespace cps;
using codepack::CompressedImage;
using codepack::CompressorConfig;
using codepack::HalfEncoding;

namespace
{

/** Everything one benchmark contributes to the three tables. */
struct Accounting
{
    std::vector<std::string> zeroRow;
    std::vector<std::string> escapeRow;
    std::vector<std::string> bankRow;
};

Accounting
account(const std::string &name, const BenchProgram &bench)
{
    const CompressedImage &img = bench.image;
    const Program &prog = bench.program;

    // Recount halfword traffic against the shipped dictionaries.
    u64 lo_zero = 0, total = 0;
    u64 hi_bank[5] = {}; // 4 banks + raw
    u64 lo_bank[4] = {}; // 3 banks + raw
    for (size_t i = 0; i < prog.textWords(); ++i) {
        u32 w = prog.word(i);
        u16 hi = static_cast<u16>(w >> 16);
        u16 lo = static_cast<u16>(w & 0xffff);
        ++total;
        HalfEncoding he = img.highDict.encode(hi);
        ++hi_bank[he.raw ? 4 : he.bank];
        HalfEncoding le = img.lowDict.encode(lo);
        if (le.zeroSpecial)
            ++lo_zero;
        else
            ++lo_bank[le.raw ? 3 : le.bank];
    }

    Accounting out;

    // A: what would lo==0 cost through bank 0 (6-bit codeword)?
    u64 saved_bits = lo_zero * (6 - 2);
    double ratio_delta = static_cast<double>(saved_bits) / 8.0 /
                         static_cast<double>(img.origTextBytes);
    out.zeroRow = {name,
                   TextTable::pct(static_cast<double>(lo_zero) /
                                  static_cast<double>(total)),
                   TextTable::grouped(saved_bits),
                   strfmt("-%.2f points", 100.0 * ratio_delta)};

    // B: recompress without the escape.
    u64 raw_blocks = 0;
    for (const codepack::BlockExtent &b : img.blocks)
        raw_blocks += b.raw;
    CompressorConfig no_escape;
    no_escape.allowRawBlocks = false;
    std::vector<u32> words;
    for (size_t i = 0; i < prog.textWords(); ++i)
        words.push_back(prog.word(i));
    CompressedImage without =
        codepack::compressWords(words, prog.text.base, no_escape);
    out.escapeRow = {name, TextTable::grouped(raw_blocks),
                     TextTable::pct(img.compressionRatio()),
                     TextTable::pct(without.compressionRatio())};

    // C: bank capture shares.
    auto pct = [&](u64 n) {
        return TextTable::pct(static_cast<double>(n) /
                              static_cast<double>(total));
    };
    out.bankRow = {name,          pct(hi_bank[0]), pct(hi_bank[1]),
                   pct(hi_bank[2]), pct(hi_bank[3]), pct(hi_bank[4]),
                   pct(lo_zero),  pct(lo_bank[0]), pct(lo_bank[1]),
                   pct(lo_bank[2]), pct(lo_bank[3])};
    return out;
}

} // namespace

int
main()
{
    Suite &suite = Suite::instance();
    suite.pregenerate();
    const std::vector<std::string> &names = suite.names();

    TextTable zero;
    zero.setTitle("Design choice A: the 2-bit low-zero codeword");
    zero.addHeader({"Bench", "lo==0 share", "bits saved", "ratio delta"});

    TextTable escape;
    escape.setTitle("Design choice B: the raw-block escape");
    escape.addHeader({"Bench", "raw blocks", "ratio with escape",
                      "ratio without"});

    TextTable banks;
    banks.setTitle("Design choice C: dictionary bank capture "
                   "(share of all halfwords)");
    banks.addHeader({"Bench", "hi b0", "hi b1", "hi b2", "hi b3",
                     "hi raw", "lo zero", "lo b0", "lo b1", "lo b2",
                     "lo raw"});

    std::vector<Accounting> acct(names.size());
    {
        ThreadPool pool;
        pool.parallelFor(names.size(), [&](size_t i) {
            acct[i] = account(names[i], suite.get(names[i]));
        });
    }

    for (const Accounting &a : acct) {
        zero.addRow(a.zeroRow);
        escape.addRow(a.escapeRow);
        banks.addRow(a.bankRow);
    }

    zero.print();
    std::printf("\n");
    escape.print();
    std::printf("\n");
    banks.print();
    return 0;
}
