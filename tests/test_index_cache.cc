/**
 * @file
 * Index-cache tests (the structure behind the paper's Tables 6 and 7).
 */

#include <gtest/gtest.h>

#include "cache/index_cache.hh"

namespace cps
{
namespace
{

TEST(IndexCache, BaselineCachesLastEntryOnly)
{
    IndexCache ic(1, 1); // the paper's baseline CodePack
    EXPECT_FALSE(ic.access(5));
    ic.fill(5);
    EXPECT_TRUE(ic.access(5));
    ic.fill(6);
    EXPECT_TRUE(ic.access(6));
    EXPECT_FALSE(ic.access(5)); // displaced
}

TEST(IndexCache, LineCoversConsecutiveGroups)
{
    IndexCache ic(1, 4);
    ic.fill(8); // covers groups 8..11
    EXPECT_TRUE(ic.access(8));
    EXPECT_TRUE(ic.access(9));
    EXPECT_TRUE(ic.access(11));
    EXPECT_FALSE(ic.access(12));
    EXPECT_FALSE(ic.access(7));
}

TEST(IndexCache, LineAlignmentIsByTag)
{
    IndexCache ic(1, 4);
    ic.fill(10); // tag 2 -> groups 8..11
    EXPECT_TRUE(ic.access(8));
    EXPECT_TRUE(ic.access(11));
}

TEST(IndexCache, FullyAssociativeLru)
{
    IndexCache ic(2, 1);
    ic.fill(1);
    ic.fill(2);
    EXPECT_TRUE(ic.access(1)); // refresh 1
    ic.fill(3);                // evicts 2
    EXPECT_TRUE(ic.access(1));
    EXPECT_FALSE(ic.access(2));
    EXPECT_TRUE(ic.access(3));
}

TEST(IndexCache, OptimizedGeometryBytes)
{
    // The paper: a 64-line x 4-index cache holds 1KB of index entries.
    IndexCache ic(64, 4);
    EXPECT_EQ(ic.dataBytes(), 1024u);
    EXPECT_EQ(ic.numLines(), 64u);
    EXPECT_EQ(ic.indexesPerLine(), 4u);
}

TEST(IndexCache, InvalidateAll)
{
    IndexCache ic(4, 2);
    ic.fill(0);
    ic.fill(2);
    ic.invalidateAll();
    EXPECT_FALSE(ic.access(0));
    EXPECT_FALSE(ic.access(2));
}

/** Table 6 sweep shapes: bigger caches and longer lines miss less on a
 *  sequential group walk with periodic revisits. */
class IndexCacheSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(IndexCacheSweep, SequentialWalkMissRatio)
{
    auto [lines, per_line] = GetParam();
    IndexCache ic(lines, per_line);
    u64 misses = 0, accesses = 0;
    // Walk 4096 groups sequentially (the common I-stream pattern).
    for (u32 g = 0; g < 4096; ++g) {
        ++accesses;
        if (!ic.access(g)) {
            ++misses;
            ic.fill(g);
        }
    }
    // Sequential walk misses exactly once per line worth of groups.
    EXPECT_EQ(misses, 4096u / per_line);
    (void)accesses;
}

INSTANTIATE_TEST_SUITE_P(
    Table6Geometries, IndexCacheSweep,
    ::testing::Combine(::testing::Values(4u, 16u, 32u, 64u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(IndexCache, CapacityRetainsWorkingSet)
{
    IndexCache ic(64, 4); // maps 256 groups
    for (u32 g = 0; g < 256; ++g) {
        if (!ic.access(g))
            ic.fill(g);
    }
    // The whole working set is now resident.
    for (u32 g = 0; g < 256; ++g)
        EXPECT_TRUE(ic.access(g)) << g;
}

TEST(IndexCache, FifoIgnoresAccessRecency)
{
    // Under LRU, touching line 1 protects it from the next eviction;
    // under FIFO it is still the oldest fill and goes first.
    IndexCache lru(2, 1, IndexReplacement::Lru);
    lru.fill(1);
    lru.fill(2);
    EXPECT_TRUE(lru.access(1));
    lru.fill(3); // evicts 2
    EXPECT_TRUE(lru.access(1));
    EXPECT_FALSE(lru.access(2));

    IndexCache fifo(2, 1, IndexReplacement::Fifo);
    fifo.fill(1);
    fifo.fill(2);
    EXPECT_TRUE(fifo.access(1));
    fifo.fill(3); // evicts 1 despite the touch
    EXPECT_FALSE(fifo.access(1));
    EXPECT_TRUE(fifo.access(2));
    EXPECT_TRUE(fifo.access(3));
}

TEST(IndexCache, RandomReplacementIsDeterministic)
{
    // Two caches with the same seed replay identical victim sequences,
    // and invalidateAll() rewinds the sequence.
    auto missPattern = [](IndexCache &ic) {
        std::vector<bool> hits;
        for (u32 g = 0; g < 512; ++g) {
            u32 group = (g * 7) % 97;
            bool hit = ic.access(group);
            hits.push_back(hit);
            if (!hit)
                ic.fill(group);
        }
        return hits;
    };
    IndexCache a(8, 1, IndexReplacement::Random);
    IndexCache b(8, 1, IndexReplacement::Random);
    std::vector<bool> first = missPattern(a);
    EXPECT_EQ(first, missPattern(b));
    a.invalidateAll();
    EXPECT_EQ(first, missPattern(a));
}

TEST(IndexCache, SetAssociativePartitionsByTag)
{
    // 4 lines in 2 sets: tags 0,2,4,... compete for one set and
    // 1,3,5,... for the other. Three even tags overflow their 2-way
    // set even though an odd-set way is idle.
    IndexCache ic(4, 1, IndexReplacement::Lru, 2);
    EXPECT_EQ(ic.numSets(), 2u);
    ic.fill(0);
    ic.fill(2);
    ic.fill(1); // other set, must not relieve the even set
    ic.fill(4); // evicts 0 (LRU within the even set)
    EXPECT_FALSE(ic.access(0));
    EXPECT_TRUE(ic.access(2));
    EXPECT_TRUE(ic.access(4));
    EXPECT_TRUE(ic.access(1));
}

TEST(IndexCache, FullyAssociativeDefaultUnchangedBySets)
{
    // sets=1 must behave exactly like the original fully-associative
    // cache on a capacity-conflict pattern.
    IndexCache flat(4, 1);
    IndexCache one_set(4, 1, IndexReplacement::Lru, 1);
    for (u32 g = 0; g < 64; ++g) {
        u32 group = (g * 5) % 11;
        bool h1 = flat.access(group);
        bool h2 = one_set.access(group);
        ASSERT_EQ(h1, h2) << "step " << g;
        if (!h1) {
            flat.fill(group);
            one_set.fill(group);
        }
    }
}

} // namespace
} // namespace cps
