/**
 * @file
 * A minimal object-file format for simulated programs, so that
 * assembling/generating and simulating can be separate steps (and so
 * compressed images have a stable on-disk counterpart).
 *
 * Layout (little-endian):
 *   magic    "CPSOBJ1\0"            8 bytes
 *   entry    u32
 *   textBase u32, textLen u32
 *   dataBase u32, dataLen u32
 *   symCount u32
 *   text bytes, data bytes
 *   symbols: { u32 addr, u16 nameLen, name bytes } x symCount
 */

#ifndef CPS_ASMKIT_OBJFILE_HH
#define CPS_ASMKIT_OBJFILE_HH

#include <optional>
#include <string>

#include "program.hh"

namespace cps
{

/** Serializes @p prog to @p path. @return false on I/O failure. */
bool saveProgram(const Program &prog, const std::string &path);

/** Loads a program saved by saveProgram. nullopt on error/corruption. */
std::optional<Program> loadProgram(const std::string &path);

/** In-memory encode/decode (the file functions use these; also handy
 *  for tests that avoid the filesystem). */
std::vector<u8> encodeProgram(const Program &prog);
std::optional<Program> decodeProgram(const std::vector<u8> &bytes);

} // namespace cps

#endif // CPS_ASMKIT_OBJFILE_HH
