#include "trace.hh"

#include <algorithm>

#include "mem/main_memory.hh"

namespace cps
{

TraceBuffer
recordTrace(const Program &prog, u64 max_entries)
{
    // The functional pass needs exactly the state a Machine sets up:
    // both segments loaded and the executor reset to the entry point.
    // Timing configuration is irrelevant (no timed accesses happen).
    MainMemory mem;
    mem.loadSegment(prog.text);
    mem.loadSegment(prog.data);
    DecodedText text(prog);
    Executor exec(text, mem);
    exec.reset(prog);

    TraceBuffer trace;
    trace.reserve(static_cast<size_t>(
        std::min<u64>(max_entries, u64{1} << 20)));
    Addr base = text.base();
    while (!exec.halted() && trace.size() < max_entries)
        trace.append(exec.step(), base);
    if (exec.halted())
        trace.markComplete();
    return trace;
}

} // namespace cps
