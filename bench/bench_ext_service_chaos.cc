/**
 * @file
 * Chaos campaign against the cpserved campaign daemon (extension;
 * DESIGN.md "Service mode").
 *
 * Spawns a fresh daemon per scenario and attacks it: worker crashes /
 * kills / hangs / garbled result frames, torn and garbage client
 * frames, a slow-loris client, overload past the admission bound, an
 * unwritable journal directory, kill -9 followed by a journal-resumed
 * restart, a client that vanishes with work queued, and a SIGTERM
 * drain mid-request. Prints one verdict row per scenario.
 *
 * Exit status: 0 when every scenario held its invariant (daemon never
 * died unbidden, stayed responsive, shed load with structured
 * OVERLOADED replies, lost no journaled work); 1 otherwise.
 */

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "common/table.hh"
#include "fault/service_campaign.hh"

using namespace cps;

int
main()
{
    fault::ServiceChaosConfig cfg;
    cfg.insns = 20000;
    cfg.scratchDir =
        (std::filesystem::temp_directory_path() /
         ("cps-service-chaos-" + std::to_string(::getpid())))
            .string();
    std::error_code ec;
    std::filesystem::create_directories(cfg.scratchDir, ec);
    if (ec) {
        std::fprintf(stderr, "cannot create scratch dir %s\n",
                     cfg.scratchDir.c_str());
        return 1;
    }

    std::printf("service chaos campaign: bench=go, %llu insns/cell, "
                "scratch %s\n\n",
                static_cast<unsigned long long>(cfg.insns),
                cfg.scratchDir.c_str());

    fault::ServiceChaosResult res = fault::runServiceCampaign(cfg);

    TextTable t;
    t.setTitle("Campaign daemon chaos suite (cpserved)");
    t.addHeader({"Scenario", "verdict", "detail"});
    for (const fault::ServiceChaosRecord &rec : res.records)
        t.addRow({rec.name, rec.pass ? "ok" : "FAILED", rec.detail});
    t.print();

    std::filesystem::remove_all(cfg.scratchDir, ec);

    if (!res.ok()) {
        std::printf("\n%u of %zu chaos scenario(s) FAILED\n",
                    res.failures, res.records.size());
        return 1;
    }
    std::printf("\nall %zu scenarios held; daemon never died unbidden\n",
                res.records.size());
    return 0;
}
