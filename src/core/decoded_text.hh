/**
 * @file
 * Pre-decoded text segment shared by the functional executor and the
 * timing pipelines.
 *
 * The simulated programs never modify their own text, so every
 * instruction is decoded and analyzed exactly once at load time. Both
 * the executor and the pipelines index this table by PC.
 */

#ifndef CPS_CORE_DECODED_TEXT_HH
#define CPS_CORE_DECODED_TEXT_HH

#include <vector>

#include "asmkit/program.hh"
#include "common/logging.hh"
#include "isa/isa.hh"

namespace cps
{

/** Decoded and analyzed copy of a program's text segment. */
class DecodedText
{
  public:
    explicit DecodedText(const Program &prog)
        : base_(prog.text.base)
    {
        size_t n = prog.textWords();
        insts_.reserve(n);
        infos_.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            insts_.push_back(decode(prog.word(i)));
            infos_.push_back(analyze(insts_.back()));
        }
    }

    Addr base() const { return base_; }
    Addr end() const { return base_ + static_cast<Addr>(insts_.size() * 4); }
    size_t size() const { return insts_.size(); }

    bool
    contains(Addr pc) const
    {
        return pc >= base_ && pc < end() && (pc & 3) == 0;
    }

    const Inst &
    inst(Addr pc) const
    {
        cps_assert(contains(pc), "instruction fetch outside text: 0x%x", pc);
        return insts_[(pc - base_) >> 2];
    }

    const InstInfo &
    info(Addr pc) const
    {
        cps_assert(contains(pc), "instruction fetch outside text: 0x%x", pc);
        return infos_[(pc - base_) >> 2];
    }

    /** Unchecked access by word index (trace replay hot path; the
     *  recorder validated every index against this same text). */
    const Inst &instAt(size_t i) const { return insts_[i]; }
    const InstInfo &infoAt(size_t i) const { return infos_[i]; }

  private:
    Addr base_;
    std::vector<Inst> insts_;
    std::vector<InstInfo> infos_;
};

} // namespace cps

#endif // CPS_CORE_DECODED_TEXT_HH
