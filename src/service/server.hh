/**
 * @file
 * cpserved: the fault-tolerant campaign daemon.
 *
 * One CampaignServer owns a Unix-domain listening socket, a poll(2)
 * event loop (the calling thread), and a bounded pool of worker
 * threads that execute matrix cells through the crash-isolating
 * CellRunner. Clients connect, send MatrixRequest frames, and receive
 * each cell's result as soon as it exists. The daemon is built
 * crash-only: all durable state lives in the per-matrix resume
 * journals and the artifact cache, so `kill -9` at any instant loses
 * at most the cells currently executing — a restarted daemon (or a
 * batch run of the same matrix) replays everything journaled.
 *
 * Robustness properties, in the order they matter:
 *
 *  - Admission control. A request whose to-be-executed cells would
 *    push the work queue past queueMax is rejected with a structured
 *    OVERLOADED frame — the daemon sheds load explicitly rather than
 *    queueing without bound. Cells served from the journal, the
 *    in-memory memo, or deduplicated onto an in-flight execution cost
 *    no queue budget, so a warm daemon admits far more than a cold one.
 *
 *  - Containment. Workers fork one process per cell (CPS_ISOLATE
 *    path); a crashing, hanging, or garbling cell is classified and
 *    retried by the CellRunner and can never take the daemon down.
 *    Every daemon-side fd is registered to be closed in forked
 *    workers, so an orphaned worker cannot hold a client's connection
 *    (or the listening socket) open past the daemon's death.
 *
 *  - Deadlines and cancellation. Each request carries a wall-clock
 *    deadline (capped by the server). On expiry — or when the client
 *    disconnects — its unstarted cells are cancelled out of the queue;
 *    cells already executing finish and warm the memo/journal for the
 *    next asker. Slow-loris clients (bytes trickling mid-frame) and
 *    clients that stop draining their results are disconnected once
 *    they stall past the configured threshold.
 *
 *  - Graceful drain. SIGTERM stops accepting connections and rejects
 *    new requests ("draining"), finishes every admitted cell,
 *    journals, replies, and exits. A second SIGTERM (or requestStop)
 *    cancels queued work, closes open requests with status Drained,
 *    and exits as soon as running cells finish.
 *
 * Threading: every piece of client/request/job state is owned by the
 * event-loop thread. Workers touch exactly two mutex-guarded queues
 * (work in, completions out) and a self-pipe; nothing else is shared.
 */

#ifndef CPS_SERVICE_SERVER_HH
#define CPS_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/ipc_frame.hh"
#include "common/socket.hh"
#include "harness/cell_runner.hh"
#include "harness/journal.hh"
#include "protocol.hh"

namespace cps
{
namespace service
{

/** Daemon policy; every field has an environment knob. */
struct ServiceConfig
{
    std::string socketPath = "cpserved.sock"; ///< CPS_SERVE_SOCKET
    unsigned workers = 2;                     ///< CPS_SERVE_WORKERS
    u32 queueMax = 256;                       ///< CPS_SERVE_QUEUE_MAX
    u64 deadlineMs = 120000;                  ///< CPS_SERVE_DEADLINE_MS;
                                              ///< default and cap
    long stallMs = 30000;   ///< CPS_SERVE_STALL_MS: drop a client
                            ///< stalled mid-frame or not draining
                            ///< results for this long
    bool allowFaultInjection = false; ///< CPS_SERVE_ALLOW_FAULTS=1
                                      ///< (chaos/tests only)
    /**
     * Cell-execution policy and journal placement, explicit rather
     * than read from the (once-cached, fork-inherited) process
     * environment so in-process daemons — tests, the chaos campaign —
     * can each run a different policy. fromEnv() fills them from the
     * usual CPS_ISOLATE / CPS_RESUME / CPS_CACHE_DIR knobs.
     */
    harness::CellRunnerConfig runner;
    bool resume = false;  ///< journal/replay matrices on disk
    std::string cacheDir; ///< journal dir; "" = harness::journalDir()
    /**
     * Test hook mirroring the engine's CPS_TEST_EXIT_AFTER_CELLS
     * (CPS_TEST_SERVE_EXIT_AFTER_CELLS): _exit(42) immediately after
     * this many executed-cell completions have been journaled — a
     * deterministic `kill -9` for the restart-resume tests. -1 = off.
     */
    long exitAfterCells = -1;

    static ServiceConfig fromEnv();
};

/** Monotonic counters exposed through the stats frame. */
struct ServiceStats
{
    u64 clientsAccepted = 0;
    u64 clientsDropped = 0;   ///< disconnected for stalling/backlog
    u64 requestsAdmitted = 0;
    u64 requestsRejected = 0; ///< OVERLOADED replies sent
    u64 requestsMalformed = 0;
    u64 cellsExecuted = 0;    ///< a worker ran the cell
    u64 cellsShared = 0;      ///< deduplicated onto an in-flight cell
    u64 cellsFromMemo = 0;
    u64 cellsFromJournal = 0;
    u64 cellsFailed = 0;      ///< executed but ended !ok
    u64 cellsCancelled = 0;   ///< deadline/disconnect/drain
    u64 deadlinesExpired = 0; ///< requests truncated by deadline
};

class CampaignServer
{
  public:
    explicit CampaignServer(ServiceConfig cfg);
    ~CampaignServer();
    CampaignServer(const CampaignServer &) = delete;
    CampaignServer &operator=(const CampaignServer &) = delete;

    /**
     * Binds the socket and spawns the worker pool.
     * @return false (with @p err filled) when the socket cannot be
     *         bound; the server is then unusable
     */
    bool start(std::string *err);

    /** Runs the event loop until stopped and drained. */
    void serve();

    /**
     * Begins a graceful drain (async-signal-safe: called from the
     * SIGTERM handler). Idempotent.
     */
    void requestDrain();

    /** Fast stop: cancel queued work, close requests, exit the loop
     *  once running cells finish (async-signal-safe). */
    void requestStop();

    const ServiceConfig &config() const { return cfg_; }

    /** Snapshot of the counters (event-loop thread only). */
    const ServiceStats &stats() const { return stats_; }

  private:
    struct Client;
    struct Request;
    struct Job;
    struct Work;
    struct Completion;

    // ---- event-loop thread ----
    void acceptClients();
    void readClient(int fd);
    bool flushClient(Client &c);
    void dropClient(int fd, const char *why);
    void handleFrame(Client &c, const IpcFrame &frame);
    void handleMatrixRequest(Client &c, const IpcFrame &frame);
    void handleStats(Client &c);
    void sendFrame(Client &c, u32 type, const std::vector<u8> &payload);
    void sendCellResult(Client &c, const CellResultMsg &msg);
    void sendError(Client &c, u32 request_id, const std::string &text);
    void finishRequest(u64 rkey, MatrixEndStatus status);
    void cancelRequestCells(u64 rkey, Request &request);
    void processCompletions();
    void checkDeadlines(u64 now_ms);
    long pollTimeoutMs(u64 now_ms) const;
    void beginDrain();
    void fastStop();
    std::string statsText() const;

    // ---- worker threads ----
    void workerLoop();

    ServiceConfig cfg_;
    harness::CellRunner runner_;
    WakeupPipe wakeup_;
    int listenFd_ = -1;
    bool draining_ = false;
    bool stopLoop_ = false;
    std::atomic<bool> drainFlag_{false};
    std::atomic<bool> stopFlag_{false};
    ServiceStats stats_;
    long executedDone_ = 0; ///< drives cfg_.exitAfterCells

    int nextClientId_ = 1;
    u64 nextJobId_ = 1;
    std::map<int, Client> clients_;        ///< by fd
    std::map<u64, Request> requests_;      ///< by rkey
    std::map<u64, std::unique_ptr<Job>> jobs_;
    std::map<std::string, u64> inflightByKey_;
    std::map<std::string, harness::CellOutcome> memo_; ///< ok cells only

    mutable std::mutex workMutex_;
    std::condition_variable workCv_;
    std::deque<std::shared_ptr<Work>> workQueue_;
    bool stopWorkers_ = false;
    std::atomic<unsigned> runningCells_{0};
    std::mutex doneMutex_;
    std::vector<Completion> done_;
    std::vector<std::thread> workers_;
};

/** Steady-clock milliseconds (monotonic, arbitrary epoch). */
u64 steadyNowMs();

} // namespace service
} // namespace cps

#endif // CPS_SERVICE_SERVER_HH
