/**
 * @file
 * Common interface for line-granular compressed-code schemes (CCRP and
 * the Lefurgy'97 instruction dictionary), plus a fetch path that gives
 * them the same cycle-level treatment the CodePack model gets: LAT
 * lookup, burst fetch, serial decode with forwarding.
 */

#ifndef CPS_COMPRESS_LINE_CODEC_HH
#define CPS_COMPRESS_LINE_CODEC_HH

#include <array>

#include "common/stats.hh"
#include "mem/main_memory.hh"
#include "pipeline/paths.hh"

namespace cps
{
namespace compress
{

/** Where one native I-cache line lives in a compressed stream. */
struct LineExtent
{
    u32 byteOffset = 0;
    u32 byteLen = 0;
};

/** A compressed text image addressable at cache-line granularity. */
class LineCodec
{
  public:
    virtual ~LineCodec() = default;

    virtual u32 numLines() const = 0;
    virtual Addr textBase() const = 0;
    virtual LineExtent extent(u32 line) const = 0;

    /**
     * For each of the line's 8 instructions, the absolute byte offset
     * (into the compressed stream) of its final encoded byte: the
     * serial decoder cannot emit an instruction before that byte
     * arrives.
     */
    virtual std::array<u32, 8> insnEndBytes(u32 line) const = 0;

    /** Serial-decode cost in cycles per instruction (CCRP: 4). */
    virtual unsigned decodeCyclesPerInsn() const = 0;

    virtual const char *name() const = 0;
};

/**
 * Fetch path for line-granular schemes. Miss handling: (1) LAT lookup —
 * a single cached LAT memory line (8 entries) stands in for the LAT
 * cache CCRP-class designs use; (2) burst read of the compressed line;
 * (3) serial decode with instruction forwarding. No output buffer: these
 * schemes decompress exactly the requested line.
 */
class LineCompressedFetchPath : public CachedFetchPath
{
  public:
    LineCompressedFetchPath(const CacheConfig &icache_cfg,
                            const LineCodec &codec, MainMemory &mem,
                            StatSet &stats)
        : CachedFetchPath(icache_cfg, stats), codec_(codec), mem_(mem),
          statLatMisses_(stats.scalar("linecodec.lat_misses")),
          statLineFills_(stats.scalar("linecodec.line_fills"))
    {}

  protected:
    std::array<Cycle, 8>
    fillLine(Addr addr, Cycle now) override
    {
        statLineFills_.inc();
        u32 line = (addr - codec_.textBase()) / 32;

        // LAT lookup: entries are 4 bytes; a hit in the cached LAT line
        // is free (probed in parallel with the L1).
        Cycle lat_ready = now;
        u32 lat_line = line / 8;
        if (lat_line != cachedLatLine_) {
            statLatMisses_.inc();
            BurstResult lat = mem_.burstRead(now, 32);
            lat_ready = lat.done;
            cachedLatLine_ = lat_line;
        }

        // Fetch the compressed line.
        LineExtent ext = codec_.extent(line);
        unsigned bus_bytes = mem_.timing().busBytes();
        u32 start =
            static_cast<u32>(roundDown(ext.byteOffset, bus_bytes));
        u32 end = ext.byteOffset + std::max<u32>(ext.byteLen, 1);
        BurstResult burst = mem_.burstRead(lat_ready, end - start);

        // Serial decode with forwarding.
        std::array<u32, 8> ends = codec_.insnEndBytes(line);
        unsigned per_insn = codec_.decodeCyclesPerInsn();
        std::array<Cycle, 8> ready{};
        Cycle t = burst.beatArrival.front();
        for (unsigned i = 0; i < 8; ++i) {
            Cycle arrival =
                burst.arrivalOfByte(ends[i] - 1 - start, bus_bytes);
            t = std::max(t + per_insn, arrival + per_insn);
            ready[i] = t;
        }
        return ready;
    }

    void resetMissPath() override { cachedLatLine_ = ~0u; }

  private:
    const LineCodec &codec_;
    MainMemory &mem_;
    u32 cachedLatLine_ = ~0u;
    Counter &statLatMisses_;
    Counter &statLineFills_;
};

} // namespace compress
} // namespace cps

#endif // CPS_COMPRESS_LINE_CODEC_HH
