/**
 * @file
 * CodePack dictionary tests: bank structure, frequency ranking, the
 * special low-zero codeword, the raw escape, and bitstream round trips.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "codepack/dictionary.hh"
#include "common/rng.hh"

namespace cps
{
namespace codepack
{
namespace
{

std::unordered_map<u16, u64>
countsOf(std::initializer_list<std::pair<u16, u64>> init)
{
    std::unordered_map<u16, u64> m;
    for (auto [v, c] : init)
        m[v] = c;
    return m;
}

TEST(DictionaryFormat, BankConstraintsMatchThePaper)
{
    // Two dictionaries of < 512 entries each, codewords of 2..11 bits
    // with 2-3 bit tags, fitting a 2KB on-chip buffer (paper 3.1-3.2).
    unsigned high_entries = 0;
    for (const Bank &b : kHighBanks) {
        high_entries += b.entries();
        EXPECT_GE(b.codeBits(), 2u);
        EXPECT_LE(b.codeBits(), 11u);
        EXPECT_GE(b.tagBits, 2u);
        EXPECT_LE(b.tagBits, 3u);
    }
    unsigned low_entries = 0;
    for (const Bank &b : kLowBanks) {
        low_entries += b.entries();
        EXPECT_LE(b.codeBits(), 11u);
    }
    EXPECT_LT(high_entries, 512u);
    EXPECT_LT(low_entries, 512u);
    EXPECT_LE((high_entries + low_entries) * 2, 2048u); // 2KB buffer
}

TEST(Dictionary, EmptyDictionaryEncodesRaw)
{
    Dictionary d(Dictionary::Kind::High);
    HalfEncoding e = d.encode(0x1234);
    EXPECT_TRUE(e.raw);
    EXPECT_EQ(e.totalBits(), 3u + 16u);
    EXPECT_EQ(d.totalEntries(), 0u);
}

TEST(Dictionary, LowZeroHasTwoBitCodeword)
{
    Dictionary d(Dictionary::Kind::Low);
    HalfEncoding e = d.encode(0);
    EXPECT_TRUE(e.zeroSpecial);
    EXPECT_FALSE(e.raw);
    EXPECT_EQ(e.totalBits(), 2u);
}

TEST(Dictionary, ZeroNeverStoredInLowDictionary)
{
    auto counts = countsOf({{0, 1000000}, {1, 100}, {2, 50}});
    Dictionary d = Dictionary::build(Dictionary::Kind::Low, counts);
    // 0 keeps the special codeword even though it is the most common.
    EXPECT_TRUE(d.encode(0).zeroSpecial);
    // 1 takes the first dictionary slot.
    HalfEncoding e = d.encode(1);
    EXPECT_FALSE(e.raw);
    EXPECT_EQ(e.bank, 0u);
    EXPECT_EQ(e.index, 0u);
}

TEST(Dictionary, HighZeroIsOrdinary)
{
    auto counts = countsOf({{0, 1000}, {7, 100}});
    Dictionary d = Dictionary::build(Dictionary::Kind::High, counts);
    HalfEncoding e = d.encode(0);
    EXPECT_FALSE(e.zeroSpecial);
    EXPECT_FALSE(e.raw);
    EXPECT_EQ(e.index, 0u); // most frequent -> first slot
}

TEST(Dictionary, FrequencyRankingAcrossBanks)
{
    // 20 values with strictly decreasing counts: the first 16 land in
    // bank 0 (4-bit index), the rest in bank 1.
    std::unordered_map<u16, u64> counts;
    for (u16 v = 0; v < 20; ++v)
        counts[v + 100] = 1000 - v;
    Dictionary d = Dictionary::build(Dictionary::Kind::High, counts);
    for (u16 v = 0; v < 16; ++v) {
        HalfEncoding e = d.encode(v + 100);
        EXPECT_EQ(e.bank, 0u) << v;
        EXPECT_EQ(e.index, v);
    }
    for (u16 v = 16; v < 20; ++v)
        EXPECT_EQ(d.encode(v + 100).bank, 1u) << v;
}

TEST(Dictionary, AdmissionRejectsSingleOccurrences)
{
    // A value seen once costs more dictionary bits than it saves.
    auto counts = countsOf({{42, 1}});
    Dictionary d = Dictionary::build(Dictionary::Kind::High, counts);
    EXPECT_TRUE(d.encode(42).raw);
    EXPECT_EQ(d.totalEntries(), 0u);
}

TEST(Dictionary, AdmissionAcceptsRepeatedValues)
{
    auto counts = countsOf({{42, 3}});
    Dictionary d = Dictionary::build(Dictionary::Kind::High, counts);
    EXPECT_FALSE(d.encode(42).raw);
}

TEST(Dictionary, DeterministicTieBreak)
{
    auto counts = countsOf({{5, 10}, {3, 10}, {9, 10}});
    Dictionary a = Dictionary::build(Dictionary::Kind::High, counts);
    Dictionary b = Dictionary::build(Dictionary::Kind::High, counts);
    for (u16 v : {5, 3, 9})
        EXPECT_EQ(a.encode(v).index, b.encode(v).index);
    // Ties break by value: 3 < 5 < 9.
    EXPECT_EQ(a.encode(3).index, 0u);
    EXPECT_EQ(a.encode(5).index, 1u);
    EXPECT_EQ(a.encode(9).index, 2u);
}

TEST(Dictionary, LookupInverseOfEncode)
{
    std::unordered_map<u16, u64> counts;
    for (u16 v = 0; v < 200; ++v)
        counts[v * 7 + 1] = 1000 - v;
    Dictionary d = Dictionary::build(Dictionary::Kind::High, counts);
    for (u16 v = 0; v < 200; ++v) {
        u16 value = v * 7 + 1;
        HalfEncoding e = d.encode(value);
        if (!e.raw) {
            EXPECT_EQ(d.lookup(e.bank, e.index), value);
        }
    }
}

TEST(Dictionary, StorageBitsCountsEntries)
{
    auto counts = countsOf({{1, 100}, {2, 100}, {3, 100}});
    Dictionary d = Dictionary::build(Dictionary::Kind::High, counts);
    EXPECT_EQ(d.storageBits(), d.totalEntries() * 16u);
    EXPECT_EQ(d.totalEntries(), 3u);
}

class DictRoundTrip : public ::testing::TestWithParam<int>
{};

/** Property: write() then read() restores any halfword value. */
TEST_P(DictRoundTrip, WriteReadRestoresValues)
{
    Rng rng(GetParam());
    // A random value population with skewed counts.
    std::unordered_map<u16, u64> counts;
    unsigned population = 50 + static_cast<unsigned>(rng.below(900));
    for (unsigned i = 0; i < population; ++i)
        counts[static_cast<u16>(rng.next())] += rng.below(100) + 1;

    for (auto kind : {Dictionary::Kind::High, Dictionary::Kind::Low}) {
        Dictionary d = Dictionary::build(kind, counts);
        BitWriter bw;
        std::vector<u16> values;
        for (int i = 0; i < 500; ++i) {
            u16 v = static_cast<u16>(rng.next());
            if (rng.chancePercent(30))
                v = 0; // exercise the low-zero path
            values.push_back(v);
            d.write(bw, v);
        }
        bw.alignByte();
        auto bytes = bw.take();
        BitReader br(bytes);
        for (u16 v : values)
            ASSERT_EQ(d.read(br), v);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictRoundTrip,
                         ::testing::Range(1, 9));


TEST(Dictionary, OverflowSpillsToRaw)
{
    // More distinct hot values than the dictionary holds (464 for the
    // high dictionary): the overflow must encode raw and still be
    // readable.
    std::unordered_map<u16, u64> counts;
    for (u16 v = 0; v < 600; ++v)
        counts[v] = 1000;
    Dictionary d = Dictionary::build(Dictionary::Kind::High, counts);
    EXPECT_EQ(d.totalEntries(), 464u); // 16+64+128+256, all banks full
    unsigned raw = 0;
    for (u16 v = 0; v < 600; ++v)
        raw += d.encode(v).raw;
    EXPECT_EQ(raw, 600u - 464u);
    // Round-trip through a stream mixing dictionary and raw values.
    BitWriter bw;
    for (u16 v = 0; v < 600; ++v)
        d.write(bw, v);
    bw.alignByte();
    auto bytes = bw.take();
    BitReader br(bytes);
    for (u16 v = 0; v < 600; ++v)
        ASSERT_EQ(d.read(br), v);
}

TEST(Dictionary, CodewordLengthsAreMonotoneInRank)
{
    // More frequent values never get longer codewords.
    std::unordered_map<u16, u64> counts;
    for (u16 v = 1; v <= 600; ++v)
        counts[v] = 10000 - v * 2;
    Dictionary d = Dictionary::build(Dictionary::Kind::High, counts);
    unsigned prev = 0;
    for (u16 v = 1; v <= 600; ++v) {
        HalfEncoding e = d.encode(v);
        unsigned bits = e.totalBits();
        EXPECT_GE(bits, prev) << "value " << v;
        prev = bits;
    }
}

} // namespace
} // namespace codepack
} // namespace cps
