#include "result.hh"

#include <cstdarg>

namespace cps
{

const char *
decodeStatusName(DecodeStatus status)
{
    switch (status) {
      case DecodeStatus::Ok:
        return "ok";
      case DecodeStatus::BadMagic:
        return "bad-magic";
      case DecodeStatus::BadVersion:
        return "bad-version";
      case DecodeStatus::Truncated:
        return "truncated";
      case DecodeStatus::BadCrc:
        return "bad-crc";
      case DecodeStatus::BadHeader:
        return "bad-header";
      case DecodeStatus::RangeError:
        return "range-error";
      case DecodeStatus::Malformed:
        return "malformed";
      case DecodeStatus::SoftError:
        return "soft-error";
    }
    return "unknown";
}

DecodeError
decodeErrorAtByte(DecodeStatus status, u64 byte_offset, const char *fmt, ...)
{
    DecodeError err;
    err.status = status;
    err.bitOffset = byte_offset * 8;
    std::va_list ap;
    va_start(ap, fmt);
    err.message = vstrfmt(fmt, ap);
    va_end(ap);
    return err;
}

DecodeError
decodeErrorAtBit(DecodeStatus status, u64 bit_offset, const char *fmt, ...)
{
    DecodeError err;
    err.status = status;
    err.bitOffset = bit_offset;
    std::va_list ap;
    va_start(ap, fmt);
    err.message = vstrfmt(fmt, ap);
    va_end(ap);
    return err;
}

} // namespace cps
