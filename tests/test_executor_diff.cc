/**
 * @file
 * Differential property tests: batches of randomly generated ALU/shift
 * operations with random operands run through the full stack
 * (assembler -> loader -> functional executor -> memory) and every
 * result is compared against an independent C++ reference
 * implementation of the ISA semantics.
 */

#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "common/rng.hh"
#include "core/executor.hh"

namespace cps
{
namespace
{

/** Reference semantics, written independently of the executor. */
u32
reference(Op op, u32 a, u32 b)
{
    s32 sa = static_cast<s32>(a), sb = static_cast<s32>(b);
    switch (op) {
      case Op::Addu: return a + b;
      case Op::Subu: return a - b;
      case Op::And: return a & b;
      case Op::Or: return a | b;
      case Op::Xor: return a ^ b;
      case Op::Nor: return ~(a | b);
      case Op::Slt: return sa < sb ? 1 : 0;
      case Op::Sltu: return a < b ? 1 : 0;
      case Op::Mul:
        return static_cast<u32>(static_cast<s64>(sa) * sb);
      case Op::Mulu: return a * b;
      case Op::Div:
        return (sb == 0 || (sa == INT32_MIN && sb == -1))
                   ? 0 : static_cast<u32>(sa / sb);
      case Op::Divu: return b == 0 ? 0 : a / b;
      case Op::Rem:
        return (sb == 0 || (sa == INT32_MIN && sb == -1))
                   ? 0 : static_cast<u32>(sa % sb);
      case Op::Remu: return b == 0 ? 0 : a % b;
      case Op::Sllv: return a << (b & 31);
      case Op::Srlv: return a >> (b & 31);
      case Op::Srav: return static_cast<u32>(sa >> (b & 31));
      default: break;
    }
    cps_panic("no reference for op");
}

struct Case
{
    Op op;
    u32 a, b;
};

class ExecutorDiff : public ::testing::TestWithParam<int>
{};

TEST_P(ExecutorDiff, AluMatchesReference)
{
    Rng rng(static_cast<u64>(GetParam()) * 104729 + 7);
    static const Op ops[] = {Op::Addu, Op::Subu, Op::And, Op::Or,
                             Op::Xor, Op::Nor, Op::Slt, Op::Sltu,
                             Op::Mul, Op::Mulu, Op::Div, Op::Divu,
                             Op::Rem, Op::Remu, Op::Sllv, Op::Srlv,
                             Op::Srav};

    // Operands: mix uniform randoms with boundary values.
    auto operand = [&rng]() -> u32 {
        static const u32 corners[] = {0, 1, 0x7fffffff, 0x80000000,
                                      0xffffffff, 0xfffe, 32, 31};
        if (rng.chancePercent(30))
            return corners[rng.below(8)];
        return static_cast<u32>(rng.next());
    };

    std::vector<Case> cases;
    std::string src = ".data\nout: .space 1024\n.text\nmain:\n"
                      "    la $s0, out\n";
    for (int i = 0; i < 200; ++i) {
        Case c{ops[rng.below(17)], operand(), operand()};
        cases.push_back(c);
        src += strfmt("    li $t0, %d\n", static_cast<s32>(c.a));
        src += strfmt("    li $t1, %d\n", static_cast<s32>(c.b));
        src += strfmt("    %s $t2, $t0, $t1\n", mnemonic(c.op));
        src += strfmt("    sw $t2, %d($s0)\n", i * 4);
    }
    src += "    li $v0, 10\n    syscall\n";

    Program prog = assembleOrDie(src);
    MainMemory mem;
    mem.loadSegment(prog.text);
    mem.loadSegment(prog.data);
    DecodedText text(prog);
    Executor exec(text, mem);
    exec.reset(prog);
    while (!exec.halted() && exec.instCount() < 100000)
        exec.step();
    ASSERT_TRUE(exec.halted());

    Addr out = prog.symbol("out");
    for (int i = 0; i < 200; ++i) {
        u32 expect = reference(cases[i].op, cases[i].a, cases[i].b);
        EXPECT_EQ(mem.read32(out + static_cast<Addr>(i * 4)), expect)
            << mnemonic(cases[i].op) << "(" << cases[i].a << ", "
            << cases[i].b << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorDiff, ::testing::Range(1, 13));

/** Immediate-operand forms against the same reference. */
TEST(ExecutorDiffImm, ImmediateOpsMatchReference)
{
    Rng rng(4242);
    struct ImmCase
    {
        Op op;
        u32 a;
        u16 imm;
    };
    static const Op ops[] = {Op::Addiu, Op::Andi, Op::Ori, Op::Xori,
                             Op::Slti, Op::Sltiu};

    std::vector<ImmCase> cases;
    std::string src = ".data\nout: .space 1024\n.text\nmain:\n"
                      "    la $s0, out\n";
    for (int i = 0; i < 150; ++i) {
        ImmCase c{ops[rng.below(6)], static_cast<u32>(rng.next()),
                  static_cast<u16>(rng.next())};
        cases.push_back(c);
        src += strfmt("    li $t0, %d\n", static_cast<s32>(c.a));
        src += strfmt("    %s $t2, $t0, %d\n", mnemonic(c.op),
                      (c.op == Op::Andi || c.op == Op::Ori ||
                       c.op == Op::Xori)
                          ? static_cast<s32>(c.imm)
                          : static_cast<s32>(static_cast<s16>(c.imm)));
        src += strfmt("    sw $t2, %d($s0)\n", i * 4);
    }
    src += "    li $v0, 10\n    syscall\n";

    Program prog = assembleOrDie(src);
    MainMemory mem;
    mem.loadSegment(prog.text);
    mem.loadSegment(prog.data);
    DecodedText text(prog);
    Executor exec(text, mem);
    exec.reset(prog);
    while (!exec.halted() && exec.instCount() < 100000)
        exec.step();
    ASSERT_TRUE(exec.halted());

    Addr out = prog.symbol("out");
    for (size_t i = 0; i < cases.size(); ++i) {
        const ImmCase &c = cases[i];
        u32 simm = static_cast<u32>(
            static_cast<s32>(static_cast<s16>(c.imm)));
        u32 expect = 0;
        switch (c.op) {
          case Op::Addiu: expect = c.a + simm; break;
          case Op::Andi: expect = c.a & c.imm; break;
          case Op::Ori: expect = c.a | c.imm; break;
          case Op::Xori: expect = c.a ^ c.imm; break;
          case Op::Slti:
            expect = static_cast<s32>(c.a) < static_cast<s32>(simm);
            break;
          case Op::Sltiu: expect = c.a < simm; break;
          default: FAIL();
        }
        EXPECT_EQ(mem.read32(out + static_cast<Addr>(i * 4)), expect)
            << mnemonic(c.op) << "(" << c.a << ", " << c.imm << ")";
    }
}

} // namespace
} // namespace cps
