/**
 * @file
 * Reproduces Table 8: speedup over native from widening the decoder
 * alone (1 = baseline, 2, and 16 decompressors per cycle; 16 is the
 * fastest possible since a block holds 16 instructions).
 *
 * Paper shape: most of the available benefit arrives with just 2
 * decoders; 16 adds almost nothing (fetch dominates decode).
 */

#include "common/table.hh"
#include "harness/suite.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();

    TextTable t;
    t.setTitle("Table 8: Speedup due to decompression rate "
               "(over native, 4-issue)");
    t.addHeader({"Bench", "CodePack (1)", "2 decoders", "16 decoders"});

    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        RunOutcome native = runMachine(bench, baseline4Issue(), insns);

        std::vector<std::string> row{name};
        for (unsigned rate : {1u, 2u, 16u}) {
            MachineConfig cfg = baseline4Issue();
            cfg.codeModel = CodeModel::CodePackCustom;
            cfg.decomp = codepack::DecompressorConfig{}; // baseline idx
            cfg.decomp.decodeRate = rate;
            RunOutcome out = runMachine(bench, cfg, insns);
            row.push_back(TextTable::fmt(speedup(native, out), 3));
        }
        t.addRow(row);
    }
    t.print();
    return 0;
}
