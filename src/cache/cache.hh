/**
 * @file
 * Set-associative cache tag store with true-LRU replacement.
 *
 * This models tags and replacement only; data always lives in the
 * functional MainMemory (the simulator is timing-directed, so the caches
 * never need to hold bytes). The I-cache and D-cache of every simulated
 * machine are instances of this class; write-back state is tracked with
 * per-line dirty bits.
 */

#ifndef CPS_CACHE_CACHE_HH
#define CPS_CACHE_CACHE_HH

#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace cps
{

/** Replacement policy (the paper's machines use LRU; the others exist
 *  for the replacement-policy ablation). */
enum class ReplPolicy : u8
{
    Lru,
    Fifo,
    Random,
};

/** Geometry of one cache. */
struct CacheConfig
{
    u32 sizeBytes = 16 * 1024;
    u32 lineBytes = 32;
    u32 assoc = 2;
    ReplPolicy policy = ReplPolicy::Lru;

    u32 numSets() const { return sizeBytes / (lineBytes * assoc); }
};

/** Result of inserting a line: describes the victim, if any. */
struct CacheVictim
{
    bool valid = false;   ///< a line was evicted
    bool dirty = false;   ///< ... and it needs writing back
    Addr lineAddr = 0;    ///< base address of the evicted line
};

/** A set-associative tag store with LRU replacement and dirty bits. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg) : cfg_(cfg)
    {
        cps_assert(isPow2(cfg.lineBytes), "line size must be a power of 2");
        cps_assert(cfg.assoc >= 1, "associativity must be >= 1");
        cps_assert(cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) == 0,
                   "cache size not divisible into sets");
        cps_assert(isPow2(cfg.numSets()), "set count must be a power of 2");
        lineShift_ = log2i(cfg.lineBytes);
        setMask_ = cfg.numSets() - 1;
        ways_.assign(static_cast<size_t>(cfg.numSets()) * cfg.assoc, Way{});
    }

    const CacheConfig &config() const { return cfg_; }

    /** Base address of the line containing @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~(cfg_.lineBytes - 1); }

    /**
     * Looks @p addr up; updates LRU on hit.
     * @return true on hit
     */
    bool
    access(Addr addr)
    {
        Way *w = find(addr);
        if (!w)
            return false;
        if (cfg_.policy == ReplPolicy::Lru)
            w->lastUse = ++useClock_;
        return true;
    }

    /** Tag probe with no LRU side effect. */
    bool probe(Addr addr) const { return findConst(addr) != nullptr; }

    /** Marks the line containing @p addr dirty (it must be present). */
    void
    setDirty(Addr addr)
    {
        Way *w = find(addr);
        cps_assert(w, "setDirty on absent line");
        w->dirty = true;
    }

    /**
     * Inserts the line containing @p addr, evicting the set's LRU way.
     * @return the victim line (valid+dirty => caller writes it back)
     */
    CacheVictim
    fill(Addr addr)
    {
        size_t set = setIndex(addr);
        Way *victim = nullptr;
        for (u32 i = 0; i < cfg_.assoc; ++i) {
            Way &w = ways_[set * cfg_.assoc + i];
            if (!w.valid) {
                victim = &w;
                break;
            }
            // LRU and FIFO both evict the smallest timestamp; under
            // FIFO the timestamp is only set at fill time.
            if (!victim || w.lastUse < victim->lastUse)
                victim = &w;
        }
        if (victim->valid && cfg_.policy == ReplPolicy::Random) {
            // Deterministic xorshift over the set: reproducible runs.
            rngState_ ^= rngState_ << 13;
            rngState_ ^= rngState_ >> 7;
            rngState_ ^= rngState_ << 17;
            victim = &ways_[set * cfg_.assoc + (rngState_ % cfg_.assoc)];
        }

        CacheVictim out;
        if (victim->valid) {
            out.valid = true;
            out.dirty = victim->dirty;
            out.lineAddr = rebuild(victim->tag, set);
        }
        victim->valid = true;
        victim->dirty = false;
        victim->tag = tagOf(addr);
        victim->lastUse = ++useClock_;
        return out;
    }

    /** Invalidates every line (dirty contents are discarded). */
    void
    invalidateAll()
    {
        for (Way &w : ways_)
            w = Way{};
        useClock_ = 0;
        rngState_ = 0x9e3779b97f4a7c15ULL;
    }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        u64 lastUse = 0;
    };

    size_t
    setIndex(Addr addr) const
    {
        return (addr >> lineShift_) & setMask_;
    }

    Addr tagOf(Addr addr) const { return addr >> lineShift_; }

    Addr
    rebuild(Addr tag, size_t set) const
    {
        (void)set; // tag includes the set bits: tag == addr >> lineShift
        return tag << lineShift_;
    }

    Way *
    find(Addr addr)
    {
        size_t set = setIndex(addr);
        Addr tag = tagOf(addr);
        for (u32 i = 0; i < cfg_.assoc; ++i) {
            Way &w = ways_[set * cfg_.assoc + i];
            if (w.valid && w.tag == tag)
                return &w;
        }
        return nullptr;
    }

    const Way *
    findConst(Addr addr) const
    {
        return const_cast<Cache *>(this)->find(addr);
    }

    CacheConfig cfg_;
    unsigned lineShift_ = 0;
    Addr setMask_ = 0;
    u64 useClock_ = 0;
    u64 rngState_ = 0x9e3779b97f4a7c15ULL;
    std::vector<Way> ways_;
};

} // namespace cps

#endif // CPS_CACHE_CACHE_HH
