/**
 * @file
 * CodePack halfword dictionaries.
 *
 * A dictionary assigns the most frequent 16-bit halfword values of a
 * program's text to short variable-length codewords, bank by bank (the
 * most frequent values land in the bank with the shortest codewords).
 * Dictionaries are fixed at program load time and shipped with the
 * compressed image (their bits are charged to the compressed size, as in
 * the paper's Table 4).
 */

#ifndef CPS_CODEPACK_DICTIONARY_HH
#define CPS_CODEPACK_DICTIONARY_HH

#include <unordered_map>
#include <vector>

#include "common/bitstream.hh"
#include "common/result.hh"
#include "common/types.hh"
#include "format.hh"

namespace cps
{
namespace codepack
{

/** How one halfword value is encoded. */
struct HalfEncoding
{
    bool raw = false;        ///< escape: 3-bit tag + 16 literal bits
    bool zeroSpecial = false; ///< low-half value 0: lone 2-bit tag
    unsigned bank = 0;       ///< dictionary bank (when !raw && !zeroSpecial)
    u32 index = 0;           ///< index within the bank
    unsigned tagBits = 0;
    u32 tag = 0;
    unsigned indexBits = 0;

    unsigned totalBits() const { return tagBits + indexBits; }
};

/** One of the two CodePack dictionaries (high or low halfwords). */
class Dictionary
{
  public:
    /** Which half of the instruction this dictionary serves. */
    enum class Kind { High, Low };

    /** Creates an empty dictionary (every halfword encodes raw). */
    explicit Dictionary(Kind kind);

    /**
     * Builds a dictionary from halfword frequency counts.
     *
     * Values are ranked by descending count (ties broken by value for
     * determinism) and poured into the banks in order. A value is only
     * admitted while doing so shrinks the program: admitting value v to a
     * bank with b-bit codewords saves count*(3+16-b) bits of stream and
     * costs 16 bits of dictionary storage.
     *
     * For Kind::Low the value 0 is never stored: it always has the
     * special 2-bit codeword.
     */
    static Dictionary build(Kind kind,
                            const std::unordered_map<u16, u64> &counts);

    /**
     * Reconstructs a dictionary from explicit per-bank entry lists
     * (deserialization). Bank populations must fit the bank widths.
     */
    static Dictionary fromBankEntries(
        Kind kind, const std::vector<std::vector<u16>> &entries);

    Kind kind() const { return kind_; }

    /** Number of banks (4 for high, 3 for low). */
    unsigned numBanks() const { return numBanks_; }

    /** The bank descriptors for this dictionary's kind. */
    const Bank *banks() const { return banks_; }

    /** Total entries stored across banks. */
    unsigned totalEntries() const;

    /** Bits of on-chip storage for the dictionary contents (16/entry). */
    u64 storageBits() const { return u64{totalEntries()} * 16; }

    /** How @p half would be encoded by this dictionary. */
    HalfEncoding encode(u16 half) const;

    /** The halfword stored at (@p bank, @p index). */
    u16 lookup(unsigned bank, u32 index) const;

    /** Appends the codeword for @p half to @p bw. */
    void write(BitWriter &bw, u16 half) const;

    /** Decodes one halfword from @p br (tag first, then index/raw). */
    u16 read(BitReader &br) const;

    /**
     * Checked variant of read() for untrusted bitstreams: a truncated
     * codeword or a dictionary index beyond a bank's population comes
     * back as a structured error (with the failing bit offset) instead
     * of an assert. On error the reader cursor is left wherever the
     * failure was detected.
     */
    Result<u16> tryRead(BitReader &br) const;

    /** Entries of bank @p bank (for dumps and tests). */
    const std::vector<u16> &bankEntries(unsigned bank) const;

  private:
    Kind kind_;
    const Bank *banks_;
    unsigned numBanks_;
    std::vector<std::vector<u16>> entries_;       // per bank
    std::unordered_map<u16, HalfEncoding> lookup_; // value -> encoding
};

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_DICTIONARY_HH
