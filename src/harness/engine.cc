#include "engine.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unistd.h>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "journal.hh"

namespace cps
{
namespace harness
{

namespace
{

/**
 * Test hook simulating a mid-matrix kill: after this many newly
 * executed (non-journaled) cells complete, the process exits with code
 * 42 — from inside the engine, exactly where a real SIGKILL would cut
 * a campaign short. Used by the interrupted/resumed determinism test;
 * unset (the default) in real runs.
 */
long
testExitAfterCells()
{
    static const long cached = [] {
        const char *env = std::getenv("CPS_TEST_EXIT_AFTER_CELLS");
        if (!env)
            return -1L;
        return std::atol(env);
    }();
    return cached;
}

constexpr int kTestExitCode = 42;

} // namespace

std::vector<CellOutcome>
runMatrixCells(const std::vector<RunRequest> &requests, unsigned threads)
{
    for (const RunRequest &r : requests)
        cps_assert(r.bench != nullptr, "runMatrix request without bench");

    std::vector<CellOutcome> cells(requests.size());
    if (requests.empty())
        return cells;
    if (threads == 0)
        threads = defaultThreadCount();

    const CellRunner runner(CellRunnerConfig::fromEnv());

    // Resume journal: replay completed cells, execute the rest, and
    // record each newly completed cell as soon as it finishes.
    std::unique_ptr<MatrixJournal> journal;
    if (resumeEnabled()) {
        journal = std::make_unique<MatrixJournal>(
            journalDir(), matrixKey(requests), requests.size());
        std::vector<std::optional<RunOutcome>> replayed =
            journal->load(requests);
        for (size_t i = 0; i < requests.size(); ++i) {
            if (!replayed[i])
                continue;
            cells[i].outcome = std::move(*replayed[i]);
            cells[i].status.fromJournal = true;
        }
    }

    std::atomic<long> completed{0};
    const long exit_after = testExitAfterCells();

    auto runCell = [&](size_t i) {
        if (cells[i].status.fromJournal)
            return;
        cells[i] = runner.run(requests[i]);
        if (journal && cells[i].status.ok())
            journal->append(i, cellKey(requests[i]), cells[i].outcome);
        if (exit_after >= 0 &&
            completed.fetch_add(1, std::memory_order_relaxed) + 1 >=
                exit_after) {
            // Simulated kill: no flushing, no destructors — the journal
            // records already on disk are all a rerun gets.
            ::_exit(kTestExitCode);
        }
    };

    if (threads <= 1 || requests.size() <= 1) {
        for (size_t i = 0; i < requests.size(); ++i)
            runCell(i);
    } else {
        ThreadPool pool(threads);
        pool.parallelFor(requests.size(), runCell);
    }

    // A fully successful matrix closes its journal: reruns replay from
    // the compact form and repeat campaigns stop growing the file.
    if (journal) {
        bool all_ok = true;
        for (const CellOutcome &c : cells)
            all_ok = all_ok && c.status.ok();
        if (all_ok)
            journal->compact(requests);
    }
    return cells;
}

std::vector<RunOutcome>
runMatrix(const std::vector<RunRequest> &requests, unsigned threads)
{
    std::vector<CellOutcome> cells = runMatrixCells(requests, threads);
    std::vector<RunOutcome> outcomes(cells.size());
    for (size_t i = 0; i < cells.size(); ++i)
        outcomes[i] = std::move(cells[i].outcome);
    return outcomes;
}

int
Matrix::exitSummary() const
{
    unsigned failed = 0;
    for (size_t i = 0; i < cells_.size(); ++i) {
        const CellStatus &st = cells_[i].status;
        if (st.ok())
            continue;
        ++failed;
        std::fprintf(stderr, "cell %zu/%zu %s: %s\n", i, cells_.size(),
                     requests_[i].bench->profile
                         ? requests_[i].bench->profile->name.c_str()
                         : "?",
                     st.describe().c_str());
    }
    if (failed == 0)
        return 0;
    std::fprintf(stderr, "%u of %zu matrix cells FAILED\n", failed,
                 cells_.size());
    return 1;
}

} // namespace harness
} // namespace cps
