/**
 * @file
 * Compression explorer: a walk through the CodePack format (the paper's
 * Figure 1) on a real benchmark.
 *
 *   - dictionary bank populations and the hottest halfword values,
 *   - a single compression block decoded codeword by codeword,
 *   - the index-table entry that locates it,
 *   - the Table 4 composition breakdown.
 *
 * Build & run:  ./build/examples/compression_explorer [bench]
 */

#include <cstdio>

#include "codepack/decompressor.hh"
#include "common/table.hh"
#include "harness/suite.hh"
#include "isa/isa.hh"

using namespace cps;
using codepack::CompressedImage;
using codepack::Decompressor;
using codepack::HalfEncoding;

namespace
{

void
dumpDictionaries(const CompressedImage &img)
{
    std::printf("Dictionaries (fixed at program load time)\n");
    std::printf("-----------------------------------------\n");
    const struct { const char *label; const codepack::Dictionary &dict; }
        dicts[] = {{"high", img.highDict}, {"low", img.lowDict}};
    for (const auto &d : dicts) {
        std::printf("%s halfword dictionary: %u entries, %llu bits of "
                    "storage\n",
                    d.label, d.dict.totalEntries(),
                    static_cast<unsigned long long>(d.dict.storageBits()));
        for (unsigned b = 0; b < d.dict.numBanks(); ++b) {
            const auto &entries = d.dict.bankEntries(b);
            std::printf("  bank %u (%u-bit codewords): %zu entries",
                        b, d.dict.banks()[b].codeBits(), entries.size());
            if (!entries.empty()) {
                std::printf(", hottest:");
                for (size_t i = 0; i < std::min<size_t>(4, entries.size());
                     ++i)
                    std::printf(" 0x%04x", entries[i]);
            }
            std::printf("\n");
        }
    }
    std::printf("\n");
}

void
dumpBlock(const CompressedImage &img, u32 group, u32 block)
{
    Decompressor d(img);
    codepack::DecodedBlock blk = d.decompressBlock(group, block);
    u32 entry = img.indexTable[group];

    std::printf("Compression group %u, block %u\n", group, block);
    std::printf("--------------------------------\n");
    std::printf("index entry 0x%08x: first offset %u, second offset "
                "+%u%s%s\n",
                entry, codepack::idxFirstOffset(entry),
                codepack::idxSecondOffset(entry),
                codepack::idxFirstRaw(entry) ? ", block0 RAW" : "",
                codepack::idxSecondRaw(entry) ? ", block1 RAW" : "");
    std::printf("compressed bytes [%u, %u)\n\n", blk.byteOffset,
                blk.byteOffset + blk.byteLen);

    Addr base = img.textBase +
                (group * codepack::kGroupInsns +
                 block * codepack::kBlockInsns) * 4;
    u32 prev_end = 0;
    for (unsigned i = 0; i < codepack::kBlockInsns; ++i) {
        u32 word = blk.words[i];
        u16 hi = static_cast<u16>(word >> 16);
        u16 lo = static_cast<u16>(word & 0xffff);
        HalfEncoding he = img.highDict.encode(hi);
        HalfEncoding le = img.lowDict.encode(lo);
        std::printf("  +%02u  [%3u..%3u bits] hi:%-5s lo:%-5s  %-30s\n",
                    i * 4, prev_end, blk.endBit[i],
                    he.raw ? "raw" : strfmt("b%u/%u", he.bank,
                                            he.index).c_str(),
                    le.zeroSpecial ? "zero"
                    : le.raw ? "raw"
                             : strfmt("b%u/%u", le.bank, le.index).c_str(),
                    disassemble(word, base + i * 4).c_str());
        prev_end = blk.endBit[i];
    }
    std::printf("\n");
}

void
dumpComposition(const CompressedImage &img)
{
    const codepack::Composition &c = img.comp;
    double total = static_cast<double>(c.totalBits());
    TextTable t;
    t.setTitle("Composition of the compressed region (Table 4 view)");
    t.addHeader({"Component", "Bits", "Share"});
    auto row = [&](const char *label, u64 bits) {
        t.addRow({label, TextTable::grouped(bits),
                  TextTable::pct(static_cast<double>(bits) / total)});
    };
    row("index table", c.indexTableBits);
    row("dictionaries", c.dictionaryBits);
    row("compressed tags", c.compressedTagBits);
    row("dictionary indices", c.dictIndexBits);
    row("raw tags", c.rawTagBits);
    row("raw bits", c.rawBits);
    row("pad", c.padBits);
    t.addRule();
    t.addRow({"total", TextTable::grouped(c.totalBits()), "100.0%"});
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "go";
    const BenchProgram &bench = Suite::instance().get(name);
    const CompressedImage &img = bench.image;

    std::printf("CodePack explorer: %s (%u bytes of text -> %llu "
                "compressed, ratio %.1f%%)\n\n",
                name, img.origTextBytes,
                static_cast<unsigned long long>(img.comp.totalBytes()),
                100.0 * img.compressionRatio());

    dumpDictionaries(img);
    dumpBlock(img, 0, 0);
    dumpComposition(img);
    return 0;
}
