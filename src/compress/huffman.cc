#include "huffman.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace cps
{
namespace compress
{

namespace
{

/** Computes optimal (unbounded) Huffman code lengths for 256 symbols. */
std::array<u8, 256>
optimalLengths(const std::array<u64, 256> &counts)
{
    struct Node
    {
        u64 weight;
        int left = -1, right = -1;
        int symbol = -1;
    };

    std::vector<Node> nodes;
    auto cmp = [&nodes](int a, int b) {
        if (nodes[a].weight != nodes[b].weight)
            return nodes[a].weight > nodes[b].weight;
        return a > b; // deterministic tie break
    };
    std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);

    for (int s = 0; s < 256; ++s) {
        Node n;
        // Give absent symbols weight 1 so everything stays encodable.
        n.weight = counts[s] > 0 ? counts[s] : 1;
        n.symbol = s;
        nodes.push_back(n);
        heap.push(s);
    }
    while (heap.size() > 1) {
        int a = heap.top();
        heap.pop();
        int b = heap.top();
        heap.pop();
        Node parent;
        parent.weight = nodes[a].weight + nodes[b].weight;
        parent.left = a;
        parent.right = b;
        nodes.push_back(parent);
        heap.push(static_cast<int>(nodes.size() - 1));
    }

    std::array<u8, 256> lengths{};
    // Iterative depth walk.
    std::vector<std::pair<int, unsigned>> stack;
    stack.emplace_back(static_cast<int>(nodes.size() - 1), 0);
    while (!stack.empty()) {
        auto [idx, depth] = stack.back();
        stack.pop_back();
        const Node &n = nodes[idx];
        if (n.symbol >= 0) {
            lengths[n.symbol] = static_cast<u8>(std::max(1u, depth));
            continue;
        }
        stack.emplace_back(n.left, depth + 1);
        stack.emplace_back(n.right, depth + 1);
    }
    return lengths;
}

/** Caps code lengths at @p max_len (JPEG-style histogram adjustment). */
void
limitLengths(std::array<u32, 64> &bl_count, unsigned max_len)
{
    for (unsigned i = 63; i > max_len; --i) {
        while (bl_count[i] > 0) {
            unsigned j = i - 2;
            while (bl_count[j] == 0)
                --j;
            bl_count[i] -= 2;
            bl_count[i - 1] += 1;
            bl_count[j + 1] += 2;
            bl_count[j] -= 1;
        }
    }
}

} // namespace

HuffmanCode
HuffmanCode::build(const std::array<u64, 256> &counts)
{
    std::array<u8, 256> lengths = optimalLengths(counts);

    // Histogram of lengths, then limit to kMaxLen.
    std::array<u32, 64> bl_count{};
    for (u8 len : lengths)
        ++bl_count[len];
    limitLengths(bl_count, kMaxLen);

    // Rank symbols by (original length, value) and hand out the adjusted
    // lengths in that order: the most compressible symbols keep the
    // shortest codes.
    std::array<u16, 256> order;
    for (int s = 0; s < 256; ++s)
        order[s] = static_cast<u16>(s);
    std::sort(order.begin(), order.end(), [&lengths](u16 a, u16 b) {
        if (lengths[a] != lengths[b])
            return lengths[a] < lengths[b];
        return a < b;
    });

    HuffmanCode hc;
    {
        unsigned len = 1;
        u32 remaining = bl_count[1];
        for (u16 sym : order) {
            while (remaining == 0) {
                ++len;
                cps_assert(len <= kMaxLen, "length limiting failed");
                remaining = bl_count[len];
            }
            hc.length_[sym] = static_cast<u8>(len);
            --remaining;
        }
    }

    // Canonical code assignment (RFC 1951 style).
    std::array<u32, kMaxLen + 2> next_code{};
    u32 code = 0;
    std::array<u32, kMaxLen + 2> count_per_len{};
    for (int s = 0; s < 256; ++s)
        ++count_per_len[hc.length_[s]];
    for (unsigned len = 1; len <= kMaxLen; ++len) {
        code = (code + count_per_len[len - 1]) << 1;
        next_code[len] = code;
        hc.firstCode_[len] = code;
    }

    // Symbols sorted by (length, value) drive both encode values and the
    // decode table.
    std::sort(order.begin(), order.end(), [&hc](u16 a, u16 b) {
        if (hc.length_[a] != hc.length_[b])
            return hc.length_[a] < hc.length_[b];
        return a < b;
    });
    u16 index = 0;
    unsigned prev_len = 0;
    for (u16 sym : order) {
        unsigned len = hc.length_[sym];
        hc.code_[sym] = static_cast<u16>(next_code[len]++);
        if (len != prev_len) {
            for (unsigned l = prev_len + 1; l <= len; ++l)
                hc.firstSymbolIndex_[l] = index;
            prev_len = len;
        }
        hc.sortedSymbols_[index++] = sym;
    }
    for (unsigned l = prev_len + 1; l <= kMaxLen + 1; ++l)
        hc.firstSymbolIndex_[l] = index;

    return hc;
}

u8
HuffmanCode::decode(BitReader &br) const
{
    u32 code = 0;
    for (unsigned len = 1; len <= kMaxLen; ++len) {
        code = (code << 1) | br.getBit();
        u32 count = firstSymbolIndex_[len + 1] - firstSymbolIndex_[len];
        if (count > 0 && code >= firstCode_[len] &&
            code < firstCode_[len] + count) {
            return static_cast<u8>(
                sortedSymbols_[firstSymbolIndex_[len] +
                               (code - firstCode_[len])]);
        }
    }
    cps_panic("corrupt Huffman stream");
}

} // namespace compress
} // namespace cps
