/**
 * @file
 * End-to-end tests for the campaign daemon (src/service).
 *
 * The load-bearing contract: results streamed by a daemon — across
 * kills, restarts, and eight concurrent clients deduplicating onto the
 * same cells — are byte-identical (encoded RunOutcome envelopes) to
 * the batch engine running the same requests in-process. Plus wire
 * protocol round-trips, admission accounting, and the introspection
 * frames.
 *
 * Daemons are forked (spawnDaemon); every test that forks must do so
 * while this process has no live threads, and warms the benchmark
 * programs first so children inherit them built.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "harness/engine.hh"
#include "service/client.hh"
#include "service/daemon_harness.hh"

using namespace cps;
using namespace cps::service;

namespace
{

std::string
scratchDir(const std::string &tag)
{
    std::string dir = (std::filesystem::temp_directory_path() /
                       ("cps-test-service-" + tag + "-" +
                        std::to_string(::getpid())))
                          .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Daemon config for tests: isolated workers, fast failure. */
ServiceConfig
testConfig(const std::string &dir)
{
    ServiceConfig cfg;
    cfg.socketPath = dir + "/d.sock";
    cfg.workers = 2;
    cfg.queueMax = 256;
    cfg.deadlineMs = 120000;
    cfg.stallMs = 30000;
    cfg.runner.isolate = true;
    cfg.runner.timeoutMs = 60000;
    cfg.runner.retries = 1;
    cfg.runner.backoffMs = 10;
    cfg.resume = true;
    cfg.cacheDir = dir + "/cache";
    return cfg;
}

CellSpec
spec(const std::string &bench, CodeModel model, u64 insns,
     BaseMachine base = BaseMachine::Issue4)
{
    CellSpec s;
    s.bench = bench;
    s.base = base;
    s.codeModel = static_cast<u8>(model);
    s.maxInsns = insns;
    return s;
}

/**
 * The batch-engine reference for @p cells: resolve each spec exactly
 * as the daemon does, run them through runMatrixCells in this process,
 * and return the encoded outcome envelope per cell.
 */
std::vector<std::vector<u8>>
batchReference(const std::vector<CellSpec> &cells)
{
    std::vector<harness::RunRequest> reqs(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        std::string err;
        EXPECT_TRUE(resolveCellSpec(cells[i], false, &reqs[i], &err))
            << err;
    }
    std::vector<harness::CellOutcome> out =
        harness::runMatrixCells(reqs, 2);
    std::vector<std::vector<u8>> encoded;
    for (const harness::CellOutcome &cell : out) {
        EXPECT_TRUE(cell.status.ok()) << cell.status.describe();
        encoded.push_back(harness::encodeRunOutcome(cell.outcome));
    }
    return encoded;
}

/** Reply cells sorted into cellIndex order (arrival order varies). */
std::vector<CellResultMsg>
ordered(const MatrixReply &reply)
{
    std::vector<CellResultMsg> cells = reply.cells;
    std::sort(cells.begin(), cells.end(),
              [](const CellResultMsg &a, const CellResultMsg &b) {
                  return a.cellIndex < b.cellIndex;
              });
    return cells;
}

long
statValue(const std::string &stats, const std::string &key)
{
    size_t pos = stats.find(key + "=");
    if (pos == std::string::npos)
        return -1;
    return std::atol(stats.c_str() + pos + key.size() + 1);
}

void
warmSuite()
{
    Suite::instance().get("go");
    Suite::instance().get("pegwit");
}

} // namespace

// ---------------------------------------------------------------
// Wire protocol round-trips.
// ---------------------------------------------------------------

TEST(ServiceProtocol, MatrixRequestRoundTrip)
{
    MatrixRequestMsg msg;
    msg.requestId = 7;
    msg.deadlineMs = 12345;
    msg.cells = {spec("go", CodeModel::CodePack, 20001),
                 spec("pegwit", CodeModel::Native, 20002,
                      BaseMachine::Issue8)};
    msg.cells[1].injectFault = 3;

    MatrixRequestMsg back;
    ASSERT_TRUE(decodeMatrixRequest(encodeMatrixRequest(msg), &back));
    EXPECT_EQ(back.requestId, 7u);
    EXPECT_EQ(back.deadlineMs, 12345u);
    ASSERT_EQ(back.cells.size(), 2u);
    EXPECT_EQ(back.cells[0].bench, "go");
    EXPECT_EQ(back.cells[0].maxInsns, 20001u);
    EXPECT_EQ(back.cells[1].base, BaseMachine::Issue8);
    EXPECT_EQ(back.cells[1].injectFault, 3);
}

TEST(ServiceProtocol, CellResultRoundTripCarriesOutcomeBytes)
{
    CellResultMsg msg;
    msg.requestId = 9;
    msg.cellIndex = 4;
    msg.source = ResultSource::Journal;
    msg.status.state = harness::CellState::Ok;
    msg.outcome.result.cycles = 123456;
    msg.outcome.result.instructions = 20000;

    CellResultMsg back;
    ASSERT_TRUE(decodeCellResult(encodeCellResult(msg), &back));
    EXPECT_EQ(back.cellIndex, 4u);
    EXPECT_EQ(back.source, ResultSource::Journal);
    EXPECT_EQ(harness::encodeRunOutcome(back.outcome),
              harness::encodeRunOutcome(msg.outcome));
}

TEST(ServiceProtocol, DecodersRejectTruncation)
{
    MatrixRequestMsg msg;
    msg.requestId = 1;
    msg.cells = {spec("go", CodeModel::Native, 20000)};
    std::vector<u8> bytes = encodeMatrixRequest(msg);
    MatrixRequestMsg back;
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
        std::vector<u8> torn(bytes.begin(), bytes.begin() + cut);
        EXPECT_FALSE(decodeMatrixRequest(torn, &back))
            << "accepted a " << cut << "-byte prefix";
    }
}

TEST(ServiceProtocol, ResolveRejectsUnknownBenchAndFaults)
{
    harness::RunRequest req;
    std::string err;
    EXPECT_FALSE(resolveCellSpec(spec("nope", CodeModel::Native, 100),
                                 false, &req, &err));
    EXPECT_FALSE(err.empty());

    CellSpec faulty = spec("go", CodeModel::CodePack, 100);
    faulty.injectFault = static_cast<u8>(harness::CellFault::Crash);
    EXPECT_FALSE(resolveCellSpec(faulty, false, &req, &err));
    EXPECT_TRUE(resolveCellSpec(faulty, true, &req, &err)) << err;
}

// ---------------------------------------------------------------
// Daemon end-to-end.
// ---------------------------------------------------------------

TEST(ServiceDaemon, StreamedResultsByteIdenticalToBatch)
{
    warmSuite();
    const u64 insns = Suite::runInsns();

    std::vector<CellSpec> cells;
    for (const char *bench : {"go", "pegwit"})
        for (CodeModel model :
             {CodeModel::Native, CodeModel::CodePack,
              CodeModel::CodePackOptimized})
            cells.push_back(spec(bench, model, insns));

    // The reference runs in-process *before* the daemon exists, in a
    // journal-free configuration: two genuinely independent
    // computations of the same cells.
    std::vector<std::vector<u8>> want = batchReference(cells);

    std::string dir = scratchDir("batch");
    DaemonProcess daemon = spawnDaemon(testConfig(dir));
    ASSERT_TRUE(daemon.running());

    MatrixRequestMsg msg;
    msg.requestId = 1;
    msg.cells = cells;
    ServiceClient client;
    ASSERT_TRUE(client.connect(dir + "/d.sock", 5000));
    MatrixReply reply = client.runMatrix(msg, 120000);
    ASSERT_TRUE(reply.allOk()) << reply.error;
    std::vector<CellResultMsg> got = ordered(reply);
    ASSERT_EQ(got.size(), cells.size());
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_TRUE(got[i].status.ok()) << got[i].status.describe();
        EXPECT_EQ(harness::encodeRunOutcome(got[i].outcome), want[i])
            << "cell " << i << " diverged from the batch engine";
    }

    EXPECT_EQ(daemon.stop(), 0); // clean SIGTERM drain
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

TEST(ServiceDaemon, KillRestartResumesFromJournalByteIdentical)
{
    warmSuite();
    const u64 insns = Suite::runInsns();

    std::vector<CellSpec> cells;
    for (u64 k = 0; k < 4; ++k)
        cells.push_back(spec("go", CodeModel::CodePack, insns + 100 + k));
    std::vector<std::vector<u8>> want = batchReference(cells);

    std::string dir = scratchDir("resume");
    ServiceConfig cfg = testConfig(dir);
    cfg.workers = 1;          // deterministic completion order
    cfg.exitAfterCells = 2;   // _exit(42) after 2 journaled cells
    DaemonProcess victim = spawnDaemon(cfg);
    ASSERT_TRUE(victim.running());

    MatrixRequestMsg msg;
    msg.requestId = 5;
    msg.cells = cells;
    {
        ServiceClient client;
        ASSERT_TRUE(client.connect(cfg.socketPath, 5000));
        MatrixReply reply = client.runMatrix(msg, 120000);
        // The stream must break mid-matrix, never complete.
        EXPECT_FALSE(reply.ended);
        EXPECT_FALSE(reply.error.empty());
    }
    EXPECT_EQ(victim.wait(30000), 42); // the deterministic kill -9

    // Restart on the same journal dir: the two completed cells replay,
    // the rest execute, and every byte matches the batch engine.
    ServiceConfig cfg2 = testConfig(dir);
    cfg2.workers = 1;
    DaemonProcess revived = spawnDaemon(cfg2);
    ASSERT_TRUE(revived.running());
    ServiceClient client;
    ASSERT_TRUE(client.connect(cfg2.socketPath, 5000));
    MatrixReply reply = client.runMatrix(msg, 120000);
    ASSERT_TRUE(reply.allOk()) << reply.error;
    std::vector<CellResultMsg> got = ordered(reply);
    ASSERT_EQ(got.size(), cells.size());
    unsigned replayed = 0;
    for (size_t i = 0; i < got.size(); ++i) {
        if (got[i].source == ResultSource::Journal)
            ++replayed;
        EXPECT_EQ(harness::encodeRunOutcome(got[i].outcome), want[i])
            << "cell " << i << " diverged after kill+restart";
    }
    EXPECT_EQ(replayed, 2u) << "exactly the journaled prefix replays";

    EXPECT_EQ(revived.stop(), 0);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

TEST(ServiceDaemon, EightConcurrentClientsDedupAndMatchBatch)
{
    warmSuite();
    const u64 insns = Suite::runInsns();

    // A pool of 6 distinct cells; every client requests an overlapping
    // window of 4, so the daemon sees 32 cell asks for 6 executions.
    std::vector<CellSpec> pool;
    for (u64 k = 0; k < 6; ++k)
        pool.push_back(spec("go", CodeModel::CodePack, insns + 200 + k));
    std::vector<std::vector<u8>> want = batchReference(pool);

    std::string dir = scratchDir("clients");
    ServiceConfig cfg = testConfig(dir);
    cfg.resume = false; // memo/in-flight dedup only, no journal assist
    DaemonProcess daemon = spawnDaemon(cfg);
    ASSERT_TRUE(daemon.running());

    constexpr unsigned kClients = 8;
    constexpr unsigned kCells = 4;
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> threads;
    for (unsigned ci = 0; ci < kClients; ++ci) {
        threads.emplace_back([&, ci] {
            MatrixRequestMsg msg;
            msg.requestId = 100 + ci;
            std::vector<size_t> picks;
            for (unsigned k = 0; k < kCells; ++k)
                picks.push_back((ci + k) % pool.size());
            for (size_t p : picks)
                msg.cells.push_back(pool[p]);
            ServiceClient client;
            if (!client.connect(cfg.socketPath, 5000)) {
                ++failures;
                return;
            }
            MatrixReply reply = client.runMatrix(msg, 120000);
            if (!reply.allOk() ||
                reply.cells.size() != msg.cells.size()) {
                ++failures;
                return;
            }
            for (const CellResultMsg &cell : ordered(reply))
                if (harness::encodeRunOutcome(cell.outcome) !=
                    want[picks[cell.cellIndex]])
                    ++failures;
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0u);

    // Dedup proof: the daemon executed each distinct cell exactly once.
    ServiceClient probe;
    ASSERT_TRUE(probe.connect(cfg.socketPath, 5000));
    std::string stats = probe.stats(5000);
    EXPECT_EQ(statValue(stats, "cellsExecuted"),
              static_cast<long>(pool.size()))
        << stats;
    long shared = statValue(stats, "cellsShared");
    long memo = statValue(stats, "cellsFromMemo");
    EXPECT_EQ(shared + memo,
              static_cast<long>(kClients * kCells - pool.size()))
        << stats;

    EXPECT_EQ(daemon.stop(), 0);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

TEST(ServiceDaemon, PingStatsAndMalformedRequest)
{
    warmSuite();
    std::string dir = scratchDir("intro");
    ServiceConfig cfg = testConfig(dir);
    DaemonProcess daemon = spawnDaemon(cfg);
    ASSERT_TRUE(daemon.running());

    ServiceClient client;
    ASSERT_TRUE(client.connect(cfg.socketPath, 5000));
    EXPECT_TRUE(client.ping(5000));
    std::string stats = client.stats(5000);
    EXPECT_NE(stats.find("daemon=cpserved"), std::string::npos);
    EXPECT_EQ(statValue(stats, "activeRequests"), 0);

    // An unknown bench must come back as a structured Error frame.
    MatrixRequestMsg bad;
    bad.requestId = 3;
    bad.cells = {spec("not-a-bench", CodeModel::Native, 1000)};
    MatrixReply reply = client.runMatrix(bad, 5000);
    EXPECT_FALSE(reply.ended);
    EXPECT_FALSE(reply.error.empty());

    EXPECT_EQ(daemon.stop(), 0);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}
