#include "server.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <poll.h>
#include <set>
#include <sys/socket.h>
#include <unistd.h>

#include "common/byteio.hh"
#include "common/logging.hh"

namespace cps
{
namespace service
{

namespace
{

/** A client that stops draining results is disconnected once this much
 *  undelivered output accumulates. */
constexpr size_t kMaxOutputBacklog = 8u << 20;

/** Poll tick ceiling: even with no timer armed, the loop revisits its
 *  exit/drain conditions at least this often. */
constexpr long kMaxPollMs = 1000;

long
envLong(const char *name, long fallback)
{
    const char *env = std::getenv(name);
    if (!env || *env == '\0')
        return fallback;
    return std::atol(env);
}

} // namespace

u64
steadyNowMs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

ServiceConfig
ServiceConfig::fromEnv()
{
    ServiceConfig cfg;
    if (const char *env = std::getenv("CPS_SERVE_SOCKET"))
        if (*env != '\0')
            cfg.socketPath = env;
    long workers = envLong("CPS_SERVE_WORKERS", cfg.workers);
    cfg.workers = workers < 1 ? 1 : static_cast<unsigned>(workers);
    long queue_max = envLong("CPS_SERVE_QUEUE_MAX", cfg.queueMax);
    cfg.queueMax = queue_max < 1 ? 1 : static_cast<u32>(queue_max);
    long deadline = envLong("CPS_SERVE_DEADLINE_MS",
                            static_cast<long>(cfg.deadlineMs));
    cfg.deadlineMs = deadline < 1 ? 1 : static_cast<u64>(deadline);
    long stall = envLong("CPS_SERVE_STALL_MS", cfg.stallMs);
    cfg.stallMs = stall < 1 ? 1 : stall;
    if (const char *env = std::getenv("CPS_SERVE_ALLOW_FAULTS"))
        cfg.allowFaultInjection = std::string(env) != "0";
    cfg.exitAfterCells = envLong("CPS_TEST_SERVE_EXIT_AFTER_CELLS", -1);
    cfg.runner = harness::CellRunnerConfig::fromEnv();
    cfg.resume = harness::resumeEnabled();
    cfg.cacheDir = harness::journalDir();
    return cfg;
}

// ---------------------------------------------------------------------
// Internal state types (event-loop thread owns all of them).
// ---------------------------------------------------------------------

struct CampaignServer::Client
{
    int fd = -1;
    int id = 0;
    bool dead = false; ///< fatal write error; reaped after the frame loop
    std::vector<u8> inBuf;
    size_t inPos = 0;
    std::vector<u8> outBuf;
    size_t outPos = 0;
    u64 partialSinceMs = 0; ///< mid-frame stall start; 0 = no stall
    std::vector<u64> requests; ///< open rkeys owned by this client
};

struct CampaignServer::Request
{
    int clientFd = -1;
    u32 requestId = 0;
    std::vector<harness::RunRequest> reqs;
    std::vector<std::string> cellKeys;
    std::unique_ptr<harness::MatrixJournal> journal;
    u32 okCells = 0;
    u32 failedCells = 0;
    u32 cancelledCells = 0;
    u32 remaining = 0; ///< cells not yet reported or cancelled
    u64 deadlineAt = 0;
};

/** One subscription of a request cell to a job's eventual outcome. */
struct CampaignServer::Work
{
    u64 jobId = 0;
    harness::RunRequest req;
};

struct CampaignServer::Job
{
    struct Sub
    {
        u64 rkey = 0;
        u32 cellIndex = 0;
        bool primary = false; ///< first asker; replies say "executed"
    };
    u64 id = 0;
    std::string key;
    std::vector<Sub> subs;
    std::shared_ptr<Work> work; ///< identity token in the work queue
};

struct CampaignServer::Completion
{
    u64 jobId = 0;
    harness::CellOutcome outcome;
};

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

CampaignServer::CampaignServer(ServiceConfig cfg)
    : cfg_(std::move(cfg)), runner_(cfg_.runner)
{
}

CampaignServer::~CampaignServer()
{
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        stopWorkers_ = true;
        workQueue_.clear();
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    for (auto &entry : clients_) {
        harness::unregisterWorkerCloseFd(entry.second.fd);
        ::close(entry.second.fd);
    }
    if (listenFd_ >= 0) {
        harness::unregisterWorkerCloseFd(listenFd_);
        ::close(listenFd_);
        ::unlink(cfg_.socketPath.c_str());
    }
    harness::unregisterWorkerCloseFd(wakeup_.readFd());
    harness::unregisterWorkerCloseFd(wakeup_.writeFd());
}

bool
CampaignServer::start(std::string *err)
{
    ignoreSigpipe();
    if (!wakeup_.valid()) {
        *err = "wakeup pipe creation failed";
        return false;
    }
    listenFd_ = listenUnix(cfg_.socketPath, 64, err);
    if (listenFd_ < 0)
        return false;
    setNonBlocking(listenFd_, true);

    // No daemon fd may leak into forked cell workers: an orphaned
    // worker holding the listening socket or a client connection would
    // mask the daemon's death from every peer.
    harness::registerWorkerCloseFd(listenFd_);
    harness::registerWorkerCloseFd(wakeup_.readFd());
    harness::registerWorkerCloseFd(wakeup_.writeFd());

    workers_.reserve(cfg_.workers);
    for (unsigned i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    return true;
}

void
CampaignServer::requestDrain()
{
    drainFlag_.store(true, std::memory_order_relaxed);
    wakeup_.notify();
}

void
CampaignServer::requestStop()
{
    stopFlag_.store(true, std::memory_order_relaxed);
    wakeup_.notify();
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

void
CampaignServer::workerLoop()
{
    for (;;) {
        std::shared_ptr<Work> work;
        {
            std::unique_lock<std::mutex> lock(workMutex_);
            workCv_.wait(lock, [this] {
                return stopWorkers_ || !workQueue_.empty();
            });
            if (workQueue_.empty()) {
                if (stopWorkers_)
                    return;
                continue;
            }
            work = workQueue_.front();
            workQueue_.pop_front();
        }
        runningCells_.fetch_add(1, std::memory_order_relaxed);
        harness::CellOutcome outcome = runner_.run(work->req);
        runningCells_.fetch_sub(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(doneMutex_);
            done_.push_back({work->jobId, std::move(outcome)});
        }
        wakeup_.notify();
    }
}

// ---------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------

void
CampaignServer::serve()
{
    std::vector<struct pollfd> fds;
    while (true) {
        if (stopFlag_.exchange(false, std::memory_order_relaxed))
            fastStop();
        if (drainFlag_.exchange(false, std::memory_order_relaxed))
            beginDrain();
        processCompletions();
        u64 now = steadyNowMs();
        checkDeadlines(now);
        if (stopLoop_ ||
            (draining_ && requests_.empty() && jobs_.empty()))
            break;

        fds.clear();
        fds.push_back({wakeup_.readFd(), POLLIN, 0});
        if (!draining_ && listenFd_ >= 0)
            fds.push_back({listenFd_, POLLIN, 0});
        for (const auto &entry : clients_) {
            short events = POLLIN;
            const Client &c = entry.second;
            if (c.outPos < c.outBuf.size())
                events |= POLLOUT;
            fds.push_back({entry.first, events, 0});
        }

        int n = ::poll(fds.data(), fds.size(), pollTimeoutMs(now));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            cps_warn("cpserved: poll failed (errno %d)", errno);
            break;
        }

        for (const struct pollfd &p : fds) {
            if (p.revents == 0)
                continue;
            if (p.fd == wakeup_.readFd()) {
                wakeup_.drain();
            } else if (p.fd == listenFd_) {
                acceptClients();
            }
        }
        // Client fds last, on a snapshot: handlers may drop clients
        // (mutating clients_) as they go.
        std::vector<std::pair<int, short>> ready;
        for (const struct pollfd &p : fds)
            if (p.revents != 0 && p.fd != wakeup_.readFd() &&
                p.fd != listenFd_)
                ready.push_back({p.fd, p.revents});
        for (const auto &r : ready) {
            auto it = clients_.find(r.first);
            if (it == clients_.end())
                continue;
            if (r.second & POLLOUT) {
                if (!flushClient(it->second)) {
                    dropClient(r.first, "write error");
                    continue;
                }
            }
            if (r.second & (POLLIN | POLLHUP | POLLERR))
                readClient(r.first);
        }
    }

    // Shutdown: stop the pool, then close every fd. Completions that
    // raced the exit are dropped — their requests are already closed,
    // and anything executed was journaled at completion time anyway.
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        stopWorkers_ = true;
        workQueue_.clear();
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();

    std::vector<int> client_fds;
    for (const auto &entry : clients_)
        client_fds.push_back(entry.first);
    for (int fd : client_fds) {
        Client &c = clients_[fd];
        flushClient(c); // last-gasp delivery of MatrixEnd frames
        harness::unregisterWorkerCloseFd(fd);
        ::close(fd);
    }
    clients_.clear();
    if (listenFd_ >= 0) {
        harness::unregisterWorkerCloseFd(listenFd_);
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(cfg_.socketPath.c_str());
    }
}

long
CampaignServer::pollTimeoutMs(u64 now_ms) const
{
    u64 next = ~u64{0};
    for (const auto &entry : requests_)
        if (entry.second.remaining > 0)
            next = std::min(next, entry.second.deadlineAt);
    for (const auto &entry : clients_)
        if (entry.second.partialSinceMs != 0)
            next = std::min(next, entry.second.partialSinceMs +
                                      static_cast<u64>(cfg_.stallMs));
    if (next == ~u64{0})
        return kMaxPollMs;
    long delta = next <= now_ms ? 0 : static_cast<long>(next - now_ms);
    return std::min(delta, kMaxPollMs);
}

void
CampaignServer::beginDrain()
{
    if (draining_)
        return;
    draining_ = true;
    // Refuse new connections immediately; the socket file disappears so
    // fresh clients fail fast instead of queueing on a dying daemon.
    if (listenFd_ >= 0) {
        harness::unregisterWorkerCloseFd(listenFd_);
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(cfg_.socketPath.c_str());
    }
}

void
CampaignServer::fastStop()
{
    beginDrain();
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        workQueue_.clear();
    }
    std::vector<u64> open;
    for (const auto &entry : requests_)
        open.push_back(entry.first);
    for (u64 rkey : open) {
        auto it = requests_.find(rkey);
        if (it == requests_.end())
            continue;
        cancelRequestCells(rkey, it->second);
        finishRequest(rkey, MatrixEndStatus::Drained);
    }
    // Running cells finish (their results still warm the journals via
    // nobody — requests are gone — but the memo insert is free); the
    // loop exits when jobs_ empties.
}

void
CampaignServer::acceptClients()
{
    for (;;) {
        int fd = acceptConnection(listenFd_);
        if (fd < 0)
            return;
        setNonBlocking(fd, true);
        harness::registerWorkerCloseFd(fd);
        Client c;
        c.fd = fd;
        c.id = nextClientId_++;
        clients_.emplace(fd, std::move(c));
        ++stats_.clientsAccepted;
    }
}

void
CampaignServer::dropClient(int fd, const char *why)
{
    auto it = clients_.find(fd);
    if (it == clients_.end())
        return;
    Client &c = it->second;
    // Orphan this client's open requests: unstarted cells are
    // cancelled; running ones finish for the memo. No MatrixEnd — the
    // peer is gone.
    for (u64 rkey : c.requests) {
        auto rit = requests_.find(rkey);
        if (rit == requests_.end())
            continue;
        cancelRequestCells(rkey, rit->second);
        stats_.cellsCancelled += rit->second.cancelledCells;
        requests_.erase(rit);
    }
    if (std::string(why) != "eof")
        ++stats_.clientsDropped;
    harness::unregisterWorkerCloseFd(fd);
    ::close(fd);
    clients_.erase(it);
}

void
CampaignServer::readClient(int fd)
{
    auto it = clients_.find(fd);
    if (it == clients_.end())
        return;
    Client &c = it->second;

    u8 buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            c.inBuf.insert(c.inBuf.end(), buf, buf + n);
            continue;
        }
        if (n == 0) {
            dropClient(fd, "eof");
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == ENOTSOCK) {
            // Test harness may hand us a pipe end; read(2) instead.
            ssize_t r = ::read(fd, buf, sizeof(buf));
            if (r > 0) {
                c.inBuf.insert(c.inBuf.end(), buf, buf + r);
                continue;
            }
            if (r == 0) {
                dropClient(fd, "eof");
                return;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
        }
        dropClient(fd, "read error");
        return;
    }

    for (;;) {
        IpcFrame frame;
        FrameGather g =
            gatherFrame(c.inBuf, c.inPos, frame, kMaxRequestPayload);
        if (g == FrameGather::Frame) {
            c.partialSinceMs = 0;
            handleFrame(c, frame);
            if (c.dead) {
                dropClient(fd, "write error");
                return;
            }
            continue;
        }
        if (g == FrameGather::NeedMore) {
            if (c.inPos < c.inBuf.size()) {
                // Mid-frame: start (or keep) the slow-loris clock.
                if (c.partialSinceMs == 0)
                    c.partialSinceMs = steadyNowMs();
            } else {
                c.partialSinceMs = 0;
            }
            break;
        }
        // Damaged: a peer that garbles the stream is beyond recovery —
        // frame boundaries are lost.
        dropClient(fd, "damaged frame");
        return;
    }
    if (c.inPos > 0) {
        c.inBuf.erase(c.inBuf.begin(),
                      c.inBuf.begin() + static_cast<long>(c.inPos));
        c.inPos = 0;
    }
}

bool
CampaignServer::flushClient(Client &c)
{
    while (c.outPos < c.outBuf.size()) {
        ssize_t n = ::send(c.fd, c.outBuf.data() + c.outPos,
                           c.outBuf.size() - c.outPos, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(c.fd, c.outBuf.data() + c.outPos,
                        c.outBuf.size() - c.outPos);
        if (n > 0) {
            c.outPos += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true; // peer slow; POLLOUT resumes us
        return false; // EPIPE/ECONNRESET/...: peer is gone
    }
    c.outBuf.clear();
    c.outPos = 0;
    return true;
}

void
CampaignServer::sendFrame(Client &c, u32 type,
                          const std::vector<u8> &payload)
{
    if (c.dead)
        return;
    std::vector<u8> bytes = encodeFrame(type, payload);
    c.outBuf.insert(c.outBuf.end(), bytes.begin(), bytes.end());
    if (!flushClient(c)) {
        c.dead = true;
        return;
    }
    if (c.outBuf.size() - c.outPos > kMaxOutputBacklog) {
        // A client that stops reading its results must not grow the
        // daemon's memory without bound.
        c.dead = true;
    }
}

void
CampaignServer::sendCellResult(Client &c, const CellResultMsg &msg)
{
    sendFrame(c, kMsgCellResult, encodeCellResult(msg));
}

void
CampaignServer::sendError(Client &c, u32 request_id,
                          const std::string &text)
{
    std::vector<u8> payload;
    put32(payload, request_id);
    payload.insert(payload.end(), text.begin(), text.end());
    sendFrame(c, kMsgError, payload);
}

void
CampaignServer::handleFrame(Client &c, const IpcFrame &frame)
{
    switch (frame.type) {
    case kMsgMatrixRequest:
        handleMatrixRequest(c, frame);
        break;
    case kMsgPing:
        sendFrame(c, kMsgPong, frame.payload);
        break;
    case kMsgStatsRequest:
        handleStats(c);
        break;
    default:
        ++stats_.requestsMalformed;
        sendError(c, 0, strfmt("unknown frame type %u", frame.type));
        break;
    }
}

void
CampaignServer::handleStats(Client &c)
{
    std::string text = statsText();
    sendFrame(c, kMsgStatsReply,
              std::vector<u8>(text.begin(), text.end()));
}

std::string
CampaignServer::statsText() const
{
    size_t queued;
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        queued = workQueue_.size();
    }
    std::string out;
    out += strfmt("daemon=cpserved\n");
    out += strfmt("pid=%ld\n", static_cast<long>(::getpid()));
    out += strfmt("draining=%d\n", draining_ ? 1 : 0);
    out += strfmt("workers=%u\n", cfg_.workers);
    out += strfmt("queueMax=%u\n", cfg_.queueMax);
    out += strfmt("clients=%zu\n", clients_.size());
    out += strfmt("activeRequests=%zu\n", requests_.size());
    out += strfmt("queuedCells=%zu\n", queued);
    out += strfmt("runningCells=%u\n",
                  runningCells_.load(std::memory_order_relaxed));
    out += strfmt("clientsAccepted=%llu\n",
                  (unsigned long long)stats_.clientsAccepted);
    out += strfmt("clientsDropped=%llu\n",
                  (unsigned long long)stats_.clientsDropped);
    out += strfmt("requestsAdmitted=%llu\n",
                  (unsigned long long)stats_.requestsAdmitted);
    out += strfmt("requestsRejected=%llu\n",
                  (unsigned long long)stats_.requestsRejected);
    out += strfmt("requestsMalformed=%llu\n",
                  (unsigned long long)stats_.requestsMalformed);
    out += strfmt("cellsExecuted=%llu\n",
                  (unsigned long long)stats_.cellsExecuted);
    out += strfmt("cellsShared=%llu\n",
                  (unsigned long long)stats_.cellsShared);
    out += strfmt("cellsFromMemo=%llu\n",
                  (unsigned long long)stats_.cellsFromMemo);
    out += strfmt("cellsFromJournal=%llu\n",
                  (unsigned long long)stats_.cellsFromJournal);
    out += strfmt("cellsFailed=%llu\n",
                  (unsigned long long)stats_.cellsFailed);
    out += strfmt("cellsCancelled=%llu\n",
                  (unsigned long long)stats_.cellsCancelled);
    out += strfmt("deadlinesExpired=%llu\n",
                  (unsigned long long)stats_.deadlinesExpired);
    return out;
}

// ---------------------------------------------------------------------
// Request admission and scheduling
// ---------------------------------------------------------------------

void
CampaignServer::handleMatrixRequest(Client &c, const IpcFrame &frame)
{
    MatrixRequestMsg msg;
    if (!decodeMatrixRequest(frame.payload, &msg)) {
        ++stats_.requestsMalformed;
        sendError(c, 0, "malformed matrix request");
        return;
    }
    if (draining_) {
        ++stats_.requestsRejected;
        OverloadedMsg o;
        o.requestId = msg.requestId;
        o.queueMax = cfg_.queueMax;
        o.reason = "draining";
        sendFrame(c, kMsgOverloaded, encodeOverloaded(o));
        return;
    }
    if (msg.cells.empty()) {
        ++stats_.requestsMalformed;
        sendError(c, msg.requestId, "empty matrix");
        return;
    }

    // Resolve every spec before touching any state: a request with one
    // bad cell is rejected whole, never partially run.
    const size_t n = msg.cells.size();
    std::vector<harness::RunRequest> reqs(n);
    std::vector<std::string> keys(n);
    for (size_t i = 0; i < n; ++i) {
        std::string err;
        if (!resolveCellSpec(msg.cells[i], cfg_.allowFaultInjection,
                             &reqs[i], &err)) {
            ++stats_.requestsMalformed;
            sendError(c, msg.requestId,
                      strfmt("cell %zu: %s", i, err.c_str()));
            return;
        }
        keys[i] = harness::cellKey(reqs[i]);
    }

    // Journal replay: the same journal a batch runMatrixCells() of this
    // matrix would write/read, so daemon and batch resume each other.
    std::unique_ptr<harness::MatrixJournal> journal;
    std::vector<std::optional<RunOutcome>> replayed(n);
    if (cfg_.resume) {
        journal = std::make_unique<harness::MatrixJournal>(
            cfg_.cacheDir.empty() ? harness::journalDir()
                                  : cfg_.cacheDir,
            harness::matrixKey(reqs), n);
        replayed = journal->load(reqs);
    }

    // Admission: count the cells that would consume queue slots. Cells
    // answerable from the journal, the memo, an in-flight execution, or
    // a duplicate within this request are free — admission charges for
    // new work, not for results that already exist.
    std::set<std::string> free_keys;
    for (size_t i = 0; i < n; ++i)
        if (replayed[i])
            free_keys.insert(keys[i]);
    u32 to_enqueue = 0;
    {
        std::set<std::string> fresh;
        for (size_t i = 0; i < n; ++i) {
            if (replayed[i])
                continue;
            const std::string &k = keys[i];
            if (free_keys.count(k) || memo_.count(k) ||
                inflightByKey_.count(k) || fresh.count(k))
                continue;
            fresh.insert(k);
            ++to_enqueue;
        }
    }
    // Outstanding work = cells waiting in the queue plus cells a
    // worker is executing right now; an empty queue with every worker
    // busy is still a loaded daemon.
    size_t depth;
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        depth = workQueue_.size();
    }
    depth += runningCells_.load(std::memory_order_relaxed);
    if (depth + to_enqueue > cfg_.queueMax) {
        ++stats_.requestsRejected;
        OverloadedMsg o;
        o.requestId = msg.requestId;
        o.queuedCells = static_cast<u32>(depth);
        o.queueMax = cfg_.queueMax;
        o.reason =
            strfmt("queue full: %zu outstanding + %u new > max %u",
                   depth, to_enqueue, cfg_.queueMax);
        sendFrame(c, kMsgOverloaded, encodeOverloaded(o));
        return;
    }

    // Admitted. Build the request and serve/enqueue each cell.
    ++stats_.requestsAdmitted;
    const u64 rkey =
        (static_cast<u64>(c.id) << 32) | static_cast<u64>(msg.requestId);
    Request &req = requests_[rkey];
    req.clientFd = c.fd;
    req.requestId = msg.requestId;
    req.reqs = std::move(reqs);
    req.cellKeys = keys;
    req.journal = std::move(journal);
    req.remaining = static_cast<u32>(n);
    u64 deadline = msg.deadlineMs == 0
                       ? cfg_.deadlineMs
                       : std::min(msg.deadlineMs, cfg_.deadlineMs);
    req.deadlineAt = steadyNowMs() + deadline;
    c.requests.push_back(rkey);

    bool enqueued = false;
    for (size_t i = 0; i < n; ++i) {
        const std::string &k = req.cellKeys[i];
        CellResultMsg reply;
        reply.requestId = msg.requestId;
        reply.cellIndex = static_cast<u32>(i);

        if (replayed[i]) {
            reply.source = ResultSource::Journal;
            reply.outcome = *replayed[i];
            sendCellResult(c, reply);
            ++req.okCells;
            --req.remaining;
            ++stats_.cellsFromJournal;
            if (!memo_.count(k)) {
                harness::CellOutcome m;
                m.outcome = *replayed[i];
                memo_.emplace(k, std::move(m));
            }
            continue;
        }
        auto mit = memo_.find(k);
        if (mit != memo_.end()) {
            reply.status = mit->second.status;
            reply.source = ResultSource::Memo;
            reply.outcome = mit->second.outcome;
            sendCellResult(c, reply);
            ++req.okCells;
            --req.remaining;
            ++stats_.cellsFromMemo;
            // Backfill this matrix's journal so a later batch (or
            // restarted daemon) run of the same matrix replays it.
            if (req.journal)
                req.journal->append(i, k, mit->second.outcome);
            continue;
        }
        auto jit = inflightByKey_.find(k);
        if (jit != inflightByKey_.end()) {
            jobs_[jit->second]->subs.push_back(
                {rkey, static_cast<u32>(i), false});
            continue;
        }
        // New work: one job per unique cell key.
        auto job = std::make_unique<Job>();
        job->id = nextJobId_++;
        job->key = k;
        job->subs.push_back({rkey, static_cast<u32>(i), true});
        job->work = std::make_shared<Work>();
        job->work->jobId = job->id;
        job->work->req = req.reqs[i];
        inflightByKey_.emplace(k, job->id);
        {
            std::lock_guard<std::mutex> lock(workMutex_);
            workQueue_.push_back(job->work);
        }
        jobs_.emplace(job->id, std::move(job));
        enqueued = true;
    }
    if (enqueued)
        workCv_.notify_all();
    if (req.remaining == 0)
        finishRequest(rkey, MatrixEndStatus::Ok);
}

void
CampaignServer::finishRequest(u64 rkey, MatrixEndStatus status)
{
    auto it = requests_.find(rkey);
    if (it == requests_.end())
        return;
    Request &req = it->second;
    if (status == MatrixEndStatus::Ok && req.journal &&
        req.failedCells == 0)
        req.journal->compact(req.reqs);
    if (status == MatrixEndStatus::DeadlineExpired)
        ++stats_.deadlinesExpired;
    stats_.cellsCancelled += req.cancelledCells;

    auto cit = clients_.find(req.clientFd);
    if (cit != clients_.end()) {
        MatrixEndMsg end;
        end.requestId = req.requestId;
        end.status = status;
        end.okCells = req.okCells;
        end.failedCells = req.failedCells;
        end.cancelledCells = req.cancelledCells;
        sendFrame(cit->second, kMsgMatrixEnd, encodeMatrixEnd(end));
        auto &open = cit->second.requests;
        for (size_t i = 0; i < open.size(); ++i)
            if (open[i] == rkey) {
                open.erase(open.begin() + static_cast<long>(i));
                break;
            }
    }
    requests_.erase(it);
}

void
CampaignServer::cancelRequestCells(u64 rkey, Request &request)
{
    std::vector<u64> orphaned;
    for (auto &entry : jobs_) {
        Job &job = *entry.second;
        bool had_primary = false;
        for (size_t i = 0; i < job.subs.size();) {
            if (job.subs[i].rkey == rkey) {
                had_primary = had_primary || job.subs[i].primary;
                job.subs.erase(job.subs.begin() + static_cast<long>(i));
            } else {
                ++i;
            }
        }
        if (had_primary && !job.subs.empty())
            job.subs.front().primary = true; // someone still waits
        if (job.subs.empty())
            orphaned.push_back(entry.first);
    }
    // Orphaned jobs still queued are cancelled outright; ones already
    // running finish and warm the memo for the next asker.
    for (u64 job_id : orphaned) {
        Job &job = *jobs_[job_id];
        bool removed = false;
        {
            std::lock_guard<std::mutex> lock(workMutex_);
            for (size_t i = 0; i < workQueue_.size(); ++i)
                if (workQueue_[i] == job.work) {
                    workQueue_.erase(workQueue_.begin() +
                                     static_cast<long>(i));
                    removed = true;
                    break;
                }
        }
        if (removed) {
            inflightByKey_.erase(job.key);
            jobs_.erase(job_id);
        }
    }
    request.cancelledCells += request.remaining;
    request.remaining = 0;
}

// ---------------------------------------------------------------------
// Completion handling and timers
// ---------------------------------------------------------------------

void
CampaignServer::processCompletions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(doneMutex_);
        batch.swap(done_);
    }
    for (Completion &done : batch) {
        auto it = jobs_.find(done.jobId);
        if (it == jobs_.end())
            continue;
        Job &job = *it->second;
        ++stats_.cellsExecuted;
        if (done.outcome.status.ok())
            memo_[job.key] = done.outcome;
        else
            ++stats_.cellsFailed;

        for (const Job::Sub &sub : job.subs) {
            auto rit = requests_.find(sub.rkey);
            if (rit == requests_.end())
                continue;
            Request &req = rit->second;
            CellResultMsg reply;
            reply.requestId = req.requestId;
            reply.cellIndex = sub.cellIndex;
            reply.status = done.outcome.status;
            reply.source =
                sub.primary ? ResultSource::Executed : ResultSource::Shared;
            reply.outcome = done.outcome.outcome;
            if (!sub.primary)
                ++stats_.cellsShared;
            auto cit = clients_.find(req.clientFd);
            if (cit != clients_.end())
                sendCellResult(cit->second, reply);
            if (done.outcome.status.ok()) {
                ++req.okCells;
                if (req.journal)
                    req.journal->append(sub.cellIndex,
                                        req.cellKeys[sub.cellIndex],
                                        done.outcome.outcome);
            } else {
                ++req.failedCells;
            }
            --req.remaining;
            if (req.remaining == 0)
                finishRequest(sub.rkey, MatrixEndStatus::Ok);
        }
        inflightByKey_.erase(job.key);
        jobs_.erase(it);

        ++executedDone_;
        if (cfg_.exitAfterCells >= 0 &&
            executedDone_ >= cfg_.exitAfterCells) {
            // Simulated kill -9: journal records above are fsync'd; no
            // flushing, no destructors, no goodbye frames.
            ::_exit(42);
        }
    }
}

void
CampaignServer::checkDeadlines(u64 now_ms)
{
    std::vector<u64> expired;
    for (const auto &entry : requests_)
        if (entry.second.remaining > 0 &&
            now_ms >= entry.second.deadlineAt)
            expired.push_back(entry.first);
    for (u64 rkey : expired) {
        auto it = requests_.find(rkey);
        if (it == requests_.end())
            continue;
        cancelRequestCells(rkey, it->second);
        finishRequest(rkey, MatrixEndStatus::DeadlineExpired);
    }

    std::vector<int> stalled;
    for (const auto &entry : clients_)
        if (entry.second.partialSinceMs != 0 &&
            now_ms >= entry.second.partialSinceMs +
                          static_cast<u64>(cfg_.stallMs))
            stalled.push_back(entry.first);
    for (int fd : stalled)
        dropClient(fd, "stalled mid-frame");
}

} // namespace service
} // namespace cps
