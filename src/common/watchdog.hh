/**
 * @file
 * Deterministic progress watchdog for the simulator's timing loops.
 *
 * A pipeline that livelocks (clock advancing, nothing retiring) would
 * otherwise spin until the process is killed from outside, taking every
 * other matrix cell's completed work with it. The watchdog counts loop
 * iterations — not wall-clock time, so a run under a sanitizer or a
 * loaded host trips at exactly the same point as a fast one and table
 * output stays byte-identical — and declares a stall after N consecutive
 * heartbeat checks in which the retired-instruction counter did not
 * move. The tripped run returns a structured RunResult (status
 * Stalled), mirroring the DecodeStatus policy: diagnose, don't abort.
 */

#ifndef CPS_COMMON_WATCHDOG_HH
#define CPS_COMMON_WATCHDOG_HH

#include "types.hh"

namespace cps
{

/** Counts heartbeat checks without forward progress. */
class ProgressWatchdog
{
  public:
    /**
     * @param interval loop iterations between heartbeat checks
     * @param stall_limit consecutive no-progress checks before the
     *        watchdog trips; 0 disables it entirely
     */
    ProgressWatchdog(u64 interval, unsigned stall_limit)
        : interval_(interval == 0 ? 1 : interval), stallLimit_(stall_limit)
    {}

    /**
     * Ticks one loop iteration with the current value of a
     * monotonically non-decreasing progress counter.
     * @return true when the stall limit has been reached
     */
    bool
    tick(u64 progress)
    {
        if (stallLimit_ == 0)
            return false;
        if (++iter_ < interval_)
            return false;
        iter_ = 0;
        // An explicit first-check flag, not a sentinel value: every
        // u64 is a legal counter reading (a counter that wraps, or one
        // that happens to start at ~0, must behave like any other), so
        // no in-band value can mean "no previous reading".
        if (first_ || progress != lastProgress_) {
            first_ = false;
            lastProgress_ = progress;
            stalledChecks_ = 0;
            return false;
        }
        return ++stalledChecks_ >= stallLimit_;
    }

    /** Checks with no progress since the last advancing check. */
    unsigned stalledChecks() const { return stalledChecks_; }

  private:
    u64 interval_;
    unsigned stallLimit_;
    u64 iter_ = 0;
    bool first_ = true; // first check always counts as progress
    u64 lastProgress_ = 0;
    unsigned stalledChecks_ = 0;
};

} // namespace cps

#endif // CPS_COMMON_WATCHDOG_HH
