/**
 * @file
 * Synthetic benchmark generator: the stand-in for SPEC CINT95 and
 * MediaBench (see DESIGN.md "Substitutions").
 *
 * Each profile generates a real, executable program in the simulated ISA:
 * a driver loop that uses an in-program LCG to call functions from a
 * pool, where each function is a loop over straight-line chunks of
 * realistic compiled code (ALU work, loads/stores to global arrays and
 * the stack, data-dependent branch diamonds, occasional FP kernels and
 * calls to leaf helpers).
 *
 * The knobs that matter to the paper's experiments:
 *   - the *static* text size and halfword value distribution control the
 *     CodePack compression ratio (Tables 3/4);
 *   - the ratio of hot code working set to I-cache size and the
 *     per-call inner-loop reuse control the I-cache miss rate (Table 1),
 *     which in turn drives every performance experiment (Tables 5-12).
 *
 * Profiles are calibrated so that, on the paper's 4-issue/16KB baseline,
 * miss rates land near the published Table 1 values: cc1 and go around
 * 6-7%, perl and vortex around 4-5%, mpeg2enc and pegwit near zero.
 */

#ifndef CPS_PROGEN_PROGEN_HH
#define CPS_PROGEN_PROGEN_HH

#include <string>
#include <vector>

#include "asmkit/program.hh"

namespace cps
{

/** Tuning parameters for one synthetic benchmark. */
struct BenchmarkProfile
{
    std::string name;

    u32 numFuncs = 64;      ///< functions in the pool (text size knob)
    u32 hotFuncs = 64;      ///< power of 2; only these are ever called
    u32 blocksPerFunc = 12; ///< chunks per function body
    u32 chunkInsns = 24;    ///< approximate instructions per chunk
    u32 innerTrips = 8;     ///< function-body loop trips per call
    u32 callsPerIter = 8;   ///< pool calls per driver iteration
    u32 numHelpers = 8;     ///< shared leaf functions
    u32 helperCallPercent = 20; ///< chance a chunk calls a helper
    /**
     * Second-tier leaf functions ("subs"): cold mid-size routines called
     * from chunk bodies. Each call is an excursion to a distant text
     * address between two adjacent-line misses of the caller, which is
     * what real call-heavy code (cc1, vortex) does to the decompressor's
     * output buffer and to index-table locality.
     */
    u32 numSubs = 0;
    u32 subInsns = 64;      ///< approximate size of one sub
    u32 subCallPercent = 0; ///< chance a chunk calls a sub
    u32 fpPercent = 0;      ///< chance a chunk is an FP kernel
    u32 oddConstPercent = 10; ///< chance of a unique 16-bit constant
    /**
     * Chance that a chunk is guarded by a data-dependent forward branch
     * that skips it entirely. Skips scatter the I-miss stream the way
     * real control-oriented code (cc1, go) does: misses land mid-block,
     * fewer line pairs are covered by the decompressor's output buffer,
     * and index-table locality drops.
     */
    u32 skipPercent = 0;
    u32 dataArrays = 64;    ///< shared global arrays
    u32 dataArrayBytes = 4096;
    u64 seed = 1;
};

/**
 * The paper's six benchmarks (Table 1), as calibrated profiles:
 * cc1, go, mpeg2enc, pegwit, perl, vortex.
 */
const std::vector<BenchmarkProfile> &standardProfiles();

/** Looks a standard profile up by name; fatal when unknown. */
const BenchmarkProfile &findProfile(const std::string &name);

/** Generates the assembly source for @p profile. */
std::string generateSource(const BenchmarkProfile &profile);

/** Generates and assembles @p profile into a loadable program. */
Program generateProgram(const BenchmarkProfile &profile);

} // namespace cps

#endif // CPS_PROGEN_PROGEN_HH
