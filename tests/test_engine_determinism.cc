/**
 * @file
 * Parallel experiment engine tests: runMatrix must return outcomes in
 * submission order and bit-identically to the serial path no matter how
 * many workers execute the runs — that is the contract that lets every
 * table binary fan out across cores and still print byte-identical
 * output. Also covers the Matrix cursor helper and the thread-safe
 * Suite accessors the engine leans on.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/table.hh"
#include "common/threadpool.hh"
#include "harness/engine.hh"

namespace cps
{
namespace
{

constexpr u64 kInsns = 20000;

std::vector<harness::RunRequest>
smallMatrix()
{
    Suite &suite = Suite::instance();
    suite.pregenerate();
    std::vector<harness::RunRequest> reqs;
    for (const char *name : {"pegwit", "go"}) {
        const BenchProgram &bench = suite.get(name);
        for (CodeModel model : {CodeModel::Native, CodeModel::CodePack,
                                CodeModel::CodePackOptimized}) {
            reqs.push_back(
                {&bench, baseline4Issue().withCodeModel(model), kInsns});
        }
    }
    return reqs;
}

void
expectSameOutcomes(const std::vector<RunOutcome> &a,
                   const std::vector<RunOutcome> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].result.cycles, b[i].result.cycles) << "slot " << i;
        EXPECT_EQ(a[i].result.instructions, b[i].result.instructions);
        EXPECT_EQ(a[i].result.programExited, b[i].result.programExited);
        EXPECT_EQ(a[i].icacheMisses, b[i].icacheMisses) << "slot " << i;
        EXPECT_EQ(a[i].bufferHits, b[i].bufferHits) << "slot " << i;
        EXPECT_EQ(a[i].missLatencyTotal, b[i].missLatencyTotal);
        EXPECT_DOUBLE_EQ(a[i].icacheMissRate, b[i].icacheMissRate);
        EXPECT_DOUBLE_EQ(a[i].indexCacheMissRate, b[i].indexCacheMissRate);
    }
}

TEST(RunMatrix, ParallelOutcomesMatchSerialExactly)
{
    std::vector<harness::RunRequest> reqs = smallMatrix();
    std::vector<RunOutcome> serial = harness::runMatrix(reqs, 1);
    std::vector<RunOutcome> parallel = harness::runMatrix(reqs, 8);
    expectSameOutcomes(serial, parallel);
}

TEST(RunMatrix, RepeatedParallelRunsAreDeterministic)
{
    std::vector<harness::RunRequest> reqs = smallMatrix();
    std::vector<RunOutcome> first = harness::runMatrix(reqs, 8);
    std::vector<RunOutcome> second = harness::runMatrix(reqs, 8);
    expectSameOutcomes(first, second);
}

TEST(RunMatrix, RendersByteIdenticalTables)
{
    std::vector<harness::RunRequest> reqs = smallMatrix();
    auto render = [&](unsigned threads) {
        std::vector<RunOutcome> out = harness::runMatrix(reqs, threads);
        TextTable t;
        t.addHeader({"Slot", "Cycles", "IPC", "Miss rate"});
        for (size_t i = 0; i < out.size(); ++i)
            t.addRow({std::to_string(i),
                      std::to_string(out[i].result.cycles),
                      TextTable::fmt(out[i].result.ipc(), 3),
                      TextTable::pct(out[i].icacheMissRate)});
        return t.render();
    };
    EXPECT_EQ(render(1), render(8));
}

TEST(RunMatrix, EmptyMatrixIsFine)
{
    std::vector<harness::RunRequest> reqs;
    EXPECT_TRUE(harness::runMatrix(reqs, 4).empty());
}

TEST(MatrixHelper, CursorHandsBackSubmissionOrder)
{
    Suite &suite = Suite::instance();
    const BenchProgram &bench = suite.get("pegwit");
    harness::Matrix m;
    size_t s0 = m.add(bench, baseline4Issue(), kInsns);
    size_t s1 = m.add(
        bench, baseline4Issue().withCodeModel(CodeModel::CodePack), kInsns);
    EXPECT_EQ(s0, 0u);
    EXPECT_EQ(s1, 1u);
    EXPECT_EQ(m.size(), 2u);
    m.run(4);

    const RunOutcome &native = m.next();
    const RunOutcome &cp = m.next();
    EXPECT_EQ(native.result.cycles, m.outcome(0).result.cycles);
    EXPECT_EQ(cp.result.cycles, m.outcome(1).result.cycles);
    // CodePack never beats native on the same machine (paper Table 5).
    EXPECT_GE(cp.result.cycles, native.result.cycles);
}

TEST(SuiteThreading, ConcurrentGetReturnsOneInstance)
{
    Suite &suite = Suite::instance();
    suite.pregenerate();
    const std::vector<std::string> &names = suite.names();
    std::vector<const BenchProgram *> seen(names.size() * 8, nullptr);
    {
        ThreadPool pool(8);
        pool.parallelFor(seen.size(), [&](size_t i) {
            seen[i] = &suite.get(names[i % names.size()]);
        });
    }
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], &suite.get(names[i % names.size()]))
            << "get() must hand out one stable BenchProgram per name";
}

} // namespace
} // namespace cps
