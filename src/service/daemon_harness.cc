#include "daemon_harness.hh"

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

namespace cps
{
namespace service
{

namespace
{

CampaignServer *gChildServer = nullptr;
volatile sig_atomic_t gChildSignals = 0;

void
childOnTerm(int)
{
    if (!gChildServer)
        return;
    if (++gChildSignals == 1)
        gChildServer->requestDrain();
    else
        gChildServer->requestStop();
}

/** waitpid with a deadline. @return true when the child was reaped. */
bool
reapWithin(pid_t pid, long timeout_ms, int *status)
{
    const long step_ms = 10;
    for (long waited = 0;; waited += step_ms) {
        pid_t r = ::waitpid(pid, status, WNOHANG);
        if (r == pid)
            return true;
        if (r < 0)
            return false; // already reaped elsewhere
        if (waited >= timeout_ms)
            return false;
        ::usleep(step_ms * 1000);
    }
}

} // namespace

DaemonProcess::~DaemonProcess()
{
    if (pid_ > 0)
        stop();
}

DaemonProcess::DaemonProcess(DaemonProcess &&other) noexcept
    : pid_(other.pid_)
{
    other.pid_ = -1;
}

DaemonProcess &
DaemonProcess::operator=(DaemonProcess &&other) noexcept
{
    if (this != &other) {
        if (pid_ > 0)
            stop();
        pid_ = other.pid_;
        other.pid_ = -1;
    }
    return *this;
}

int
DaemonProcess::stop(long timeout_ms)
{
    if (pid_ <= 0)
        return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    if (!reapWithin(pid_, timeout_ms, &status)) {
        ::kill(pid_, SIGKILL);
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
        return -1;
    }
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void
DaemonProcess::kill9()
{
    if (pid_ <= 0)
        return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
}

int
DaemonProcess::wait(long timeout_ms)
{
    if (pid_ <= 0)
        return -1;
    int status = 0;
    if (!reapWithin(pid_, timeout_ms, &status)) {
        kill9();
        return -1;
    }
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

DaemonProcess
spawnDaemon(const ServiceConfig &cfg)
{
    DaemonProcess daemon;
    pid_t pid = ::fork();
    if (pid < 0)
        return daemon;
    if (pid == 0) {
        // Child: a real daemon process. The parent's warmed Suite came
        // along with the fork, so cells start executing immediately.
        CampaignServer server(cfg);
        gChildServer = &server;
        struct sigaction sa = {};
        sa.sa_handler = childOnTerm;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
        std::string err;
        if (!server.start(&err))
            ::_exit(9);
        server.serve();
        ::_exit(0);
    }
    daemon.pid_ = pid;
    // Wait until the socket accepts (connectUnix retries on ENOENT /
    // ECONNREFUSED); the probe connection is closed straight away and
    // the daemon reaps it as a clean EOF.
    int probe = connectUnix(cfg.socketPath, 5000);
    if (probe >= 0)
        ::close(probe);
    return daemon;
}

} // namespace service
} // namespace cps
