/**
 * @file
 * Reproduces Figure 2: the cycle-by-cycle timeline of a single L1
 * I-cache miss under (a) native code with critical-word-first,
 * (b) baseline CodePack (index fetch, code fetch, 1 insn/cycle decode),
 * and (c) optimized CodePack (index-cache hit, 2 insns/cycle).
 *
 * The paper's example quotes: native critical word at t=10; baseline
 * CodePack critical instruction at t=25; optimized at t=14 (the precise
 * value depends on how codewords pack into bus beats).
 */

#include <cstdio>

#include "codepack/timing.hh"
#include "common/table.hh"
#include "harness/suite.hh"

using namespace cps;
using codepack::DecompressorConfig;
using codepack::DecompressorModel;
using codepack::LineFill;
using codepack::MissTrace;

namespace
{

void
printTimeline(const char *label, const MissTrace &trace,
              const LineFill &fill)
{
    std::printf("%s\n", label);
    if (trace.bufferHit) {
        std::printf("  served from the 16-insn output buffer\n");
    } else {
        if (trace.indexPerfect || trace.indexHit)
            std::printf("  t=%3llu  index available (index cache hit)\n",
                        static_cast<unsigned long long>(trace.indexDone));
        else
            std::printf("  t=%3llu  index fetched from main memory\n",
                        static_cast<unsigned long long>(trace.indexDone));
        std::printf("  code beats arrive at:");
        for (Cycle c : trace.codeBeats)
            std::printf(" %llu", static_cast<unsigned long long>(c));
        std::printf("\n");
    }
    std::printf("  requested line words ready:");
    for (Cycle c : fill.wordReady)
        std::printf(" %llu", static_cast<unsigned long long>(c));
    std::printf("\n  critical word at t=%llu\n\n",
                static_cast<unsigned long long>(fill.wordReady[0]));
}

} // namespace

int
main()
{
    const BenchProgram &bench = Suite::instance().get("go");
    const Addr miss_addr = bench.program.text.base; // line 0, word 0

    std::printf("Figure 2: L1 miss activity for one cache miss\n");
    std::printf("=============================================\n");
    std::printf("(memory: 10-cycle first access, 2-cycle rate, 64-bit "
                "bus; miss at t=0)\n\n");

    // (a) native code with critical word first.
    {
        MainMemory mem;
        StatSet stats;
        NativeFetchPath fetch(CacheConfig{16 * 1024, 32, 2}, mem, stats);
        Cycle critical = fetch.fetchWord(miss_addr, 0);
        std::printf("(a) Native code\n");
        std::printf("  burst read, critical word first\n");
        std::printf("  critical word at t=%llu   (paper: t=10)\n\n",
                    static_cast<unsigned long long>(critical));
    }

    // (b) baseline CodePack.
    {
        MainMemory mem;
        StatSet stats;
        DecompressorModel model(bench.image, mem, DecompressorConfig{},
                                stats);
        LineFill fill = model.handleMiss(miss_addr, 0);
        printTimeline("(b) CodePack baseline   (paper: critical insn "
                      "~t=25 on an index miss)",
                      model.lastTrace(), fill);
    }

    // (c) optimized CodePack: warm the index cache first, then miss.
    {
        MainMemory mem;
        StatSet stats;
        DecompressorModel model(bench.image, mem,
                                DecompressorConfig::optimized(), stats);
        model.handleMiss(miss_addr + 64, 0); // warms index cache (blk 1)
        mem.resetTimingState();
        LineFill fill = model.handleMiss(miss_addr, 0);
        printTimeline("(c) CodePack optimized: index cache hit + 2 "
                      "decoders   (paper: ~t=14)",
                      model.lastTrace(), fill);
    }

    return 0;
}
