/**
 * @file
 * Reproduces Table 5: instructions per cycle for Native, baseline
 * CodePack and optimized CodePack on the three Table 2 machines. Also
 * prints the Table 2 machine configurations for reference.
 *
 * Paper shape: the performance loss of baseline CodePack vs native is
 * < 14% (1-issue), < 18% (4-issue), < 13% (8-issue); the optimized
 * decompressor is within a few percent of native and sometimes faster;
 * mpeg2enc/pegwit barely move.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

namespace
{

void
printTable2()
{
    TextTable t;
    t.setTitle("Table 2: Simulated architectures (configuration)");
    t.addHeader({"Parameter", "1-issue", "4-issue", "8-issue"});
    t.addRow({"issue", "1 in-order", "4 out-of-order", "8 out-of-order"});
    t.addRow({"RUU entries", "8", "64", "128"});
    t.addRow({"load/store queue", "4", "32", "64"});
    t.addRow({"int ALUs", "1", "4", "8"});
    t.addRow({"mem ports", "1", "2", "2"});
    t.addRow({"branch pred", "bimodal 2048", "gshare 14-bit",
              "hybrid 1024-meta"});
    t.addRow({"L1 I-cache", "8KB 32B 2-way", "16KB 32B 2-way",
              "32KB 32B 2-way"});
    t.addRow({"L1 D-cache", "8KB 16B 2-way", "16KB 16B 2-way",
              "32KB 16B 2-way"});
    t.addRow({"memory", "10 cyc, 2 cyc rate, 64-bit", "same", "same"});
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    printTable2();

    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    TextTable t;
    t.setTitle("Table 5: Instructions per cycle");
    t.addHeader({"Bench", "1i Native", "1i CodePack", "1i Optimized",
                 "4i Native", "4i CodePack", "4i Optimized",
                 "8i Native", "8i CodePack", "8i Optimized"});

    MachineConfig machines[] = {baseline1Issue(), baseline4Issue(),
                                baseline8Issue()};

    harness::Matrix mat;
    for (const std::string &name : suite.names())
        for (const MachineConfig &m : machines)
            for (CodeModel model :
                 {CodeModel::Native, CodeModel::CodePack,
                  CodeModel::CodePackOptimized})
                mat.add(suite.get(name), m.withCodeModel(model), insns);
    mat.run();

    for (const std::string &name : suite.names()) {
        std::vector<std::string> row{name};
        for (size_t i = 0; i < 9; ++i)
            row.push_back(mat.fmtNext([](const RunOutcome &o) {
                return TextTable::fmt(o.result.ipc(), 3);
            }));
        t.addRow(row);
    }
    t.print();
    return mat.exitSummary();
}
