/**
 * @file
 * On-disk content-addressed artifact cache.
 *
 * Benchmark pregeneration does the same expensive work in every process
 * and on every re-run: generate a program, compress it, record its
 * functional trace. All of it is a pure function of a small set of
 * inputs (profile + seed, compressor id + config, format/code
 * versions), so the results are cached on disk under a key derived from
 * exactly those inputs. A warm run loads and verifies instead of
 * recomputing.
 *
 * Trust model: cache entries are untrusted input (another process, a
 * crashed writer or a bad disk may have produced them). Every load is
 * verified — the envelope carries a CRC-32 over the full key + payload,
 * and the payloads (compressed images, traces) re-verify their own
 * section CRCs on decode. Any mismatch is treated as a miss and the
 * caller recomputes; a corrupt cache can cost time, never correctness.
 *
 * Concurrency: writers serialize each entry into a private temp file in
 * the cache directory and publish it with an atomic rename(2), so
 * concurrent bench processes storing the same key race benignly (one
 * complete entry wins) and readers never observe a partial file.
 *
 * Entry file layout (little-endian), named `<fnv1a64(key) hex>.art`:
 *   magic "CPSART1\0"            8 bytes
 *   u32 keyLen, key bytes        the full (uncollided) cache key
 *   u32 payloadLen, payload
 *   u32 CRC-32 over everything above
 *
 * Housekeeping: opening a cache sweeps temp files abandoned by killed
 * writers (any `*.tmp.*` older than an hour), and when a size budget is
 * configured it evicts entries least-recently-used first (mtime order;
 * load() touches entries it returns). Both are best-effort — a cache
 * that cannot be cleaned still works, it just wastes disk.
 *
 * Knobs: CPS_CACHE_DIR overrides the directory (default ".cps-cache"
 * under the working directory); CPS_ARTIFACT_CACHE=0 disables the cache
 * entirely (loads miss, stores are no-ops); CPS_CACHE_MAX_BYTES bounds
 * the total size of entries (0, the default, is unlimited).
 */

#ifndef CPS_COMMON_ARTIFACT_CACHE_HH
#define CPS_COMMON_ARTIFACT_CACHE_HH

#include <optional>
#include <string>
#include <vector>

#include "types.hh"

namespace cps
{

/** A directory of verified, atomically published cache entries. */
class ArtifactCache
{
  public:
    /**
     * @param dir directory holding the entries (created lazily on the
     *        first store)
     * @param enabled when false, load() always misses and store() is a
     *        no-op — the recompute path runs as if the cache never
     *        existed
     * @param max_bytes entry-size budget enforced (best-effort, LRU by
     *        mtime) when the cache is opened; 0 means unlimited
     */
    ArtifactCache(std::string dir, bool enabled, u64 max_bytes = 0);

    /** The process-wide instance, configured once from the environment
     *  (CPS_CACHE_DIR, CPS_ARTIFACT_CACHE). */
    static const ArtifactCache &instance();

    bool enabled() const { return enabled_; }
    const std::string &dir() const { return dir_; }

    /**
     * Loads the payload stored under @p key. Returns nullopt on miss
     * or on any verification failure (bad magic, wrong key, truncation,
     * CRC mismatch) — the caller recomputes either way.
     */
    std::optional<std::vector<u8>> load(const std::string &key) const;

    /**
     * Stores @p payload under @p key (atomic rename; concurrent writers
     * of the same key are safe). Failures are non-fatal: the cache is
     * an accelerator, so a full disk or unwritable directory just means
     * the next run recomputes.
     * @return true when the entry was published
     */
    bool store(const std::string &key, const std::vector<u8> &payload) const;

    /** Hex FNV-1a 64-bit digest of @p key (the entry's file name stem). */
    static std::string keyHash(const std::string &key);

    /** Full path of the entry file that would hold @p key. */
    std::string entryPath(const std::string &key) const;

    /**
     * Housekeeping pass, run automatically at construction: removes
     * `*.tmp.*` files older than @p tmp_age_seconds (killed writers
     * never publish their temp file, so anything old is garbage) and,
     * when a size budget is set, evicts `.art` entries oldest-mtime
     * first until the total fits. Best-effort: every filesystem error
     * is swallowed. Exposed for tests.
     */
    void maintain(u64 tmp_age_seconds = 3600) const;

  private:
    std::string dir_;
    bool enabled_;
    u64 maxBytes_;
};

} // namespace cps

#endif // CPS_COMMON_ARTIFACT_CACHE_HH
