#include "injector.hh"

#include <algorithm>

#include "codepack/imagefile.hh"
#include "common/logging.hh"

namespace cps
{
namespace fault
{

const FaultKind kAllFaultKinds[kNumFaultKinds] = {
    FaultKind::BitFlip,      FaultKind::MultiBitFlip,
    FaultKind::ByteCorrupt,  FaultKind::Truncate,
    FaultKind::IndexCorrupt,
};

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::BitFlip:
        return "bit-flip";
      case FaultKind::MultiBitFlip:
        return "multi-bit-flip";
      case FaultKind::ByteCorrupt:
        return "byte-corrupt";
      case FaultKind::Truncate:
        return "truncate";
      case FaultKind::IndexCorrupt:
        return "index-corrupt";
    }
    return "unknown";
}

std::string
FaultRecord::describe() const
{
    return strfmt("%s seed 0x%llx: %u flip(s) from byte %zu",
                  faultKindName(kind),
                  static_cast<unsigned long long>(seed), flips, offset);
}

FaultRecord
FaultInjector::inject(std::vector<u8> &bytes, FaultKind kind)
{
    cps_assert(!bytes.empty(), "cannot inject into an empty image");
    FaultRecord rec;
    rec.kind = kind;
    rec.seed = seed_;

    switch (kind) {
      case FaultKind::BitFlip: {
        size_t bit = rng_.below(bytes.size() * 8);
        bytes[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        rec.offset = bit / 8;
        rec.flips = 1;
        break;
      }
      case FaultKind::MultiBitFlip: {
        unsigned flips = static_cast<unsigned>(rng_.range(2, 8));
        rec.offset = bytes.size();
        for (unsigned i = 0; i < flips; ++i) {
            size_t bit = rng_.below(bytes.size() * 8);
            bytes[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
            rec.offset = std::min(rec.offset, bit / 8);
        }
        rec.flips = flips;
        break;
      }
      case FaultKind::ByteCorrupt: {
        size_t at = rng_.below(bytes.size());
        u8 fresh;
        do {
            fresh = static_cast<u8>(rng_.below(256));
        } while (fresh == bytes[at]);
        bytes[at] = fresh;
        rec.offset = at;
        break;
      }
      case FaultKind::Truncate: {
        // Keep [0, cut): always drops at least one byte.
        size_t cut = rng_.below(bytes.size());
        bytes.resize(cut);
        rec.offset = cut;
        break;
      }
      case FaultKind::IndexCorrupt: {
        // Overwrite one whole index-table entry (the v2 layout puts
        // the entry count at a fixed offset; see imagefile.hh). Images
        // too small to hold an index table get a plain byte fault.
        using codepack::kImageIndexCountOffset;
        using codepack::kImageIndexEntriesOffset;
        u32 groups = 0;
        if (bytes.size() >= kImageIndexEntriesOffset) {
            for (unsigned i = 0; i < 4; ++i)
                groups |= static_cast<u32>(
                              bytes[kImageIndexCountOffset + i])
                          << (8 * i);
        }
        size_t table_bytes = size_t{groups} * 4;
        if (groups == 0 ||
            kImageIndexEntriesOffset + table_bytes > bytes.size()) {
            rec = inject(bytes, FaultKind::ByteCorrupt);
            rec.kind = kind;
            return rec;
        }
        size_t entry = rng_.below(groups);
        size_t at = kImageIndexEntriesOffset + entry * 4;
        u32 garbage = static_cast<u32>(rng_.next());
        for (unsigned i = 0; i < 4; ++i)
            bytes[at + i] = static_cast<u8>(garbage >> (8 * i));
        rec.offset = at;
        break;
      }
    }
    return rec;
}

FaultRecord
FaultInjector::injectAny(std::vector<u8> &bytes)
{
    FaultKind kind = kAllFaultKinds[rng_.below(kNumFaultKinds)];
    return inject(bytes, kind);
}

} // namespace fault
} // namespace cps
