/**
 * @file
 * Fault-coverage campaigns: corrupt an encoded image N seeded times and
 * classify how each corruption is handled by the hardened decode path.
 *
 * Outcomes, in decreasing order of comfort:
 *   DetectedAtLoad   the image loader rejected the bytes (magic, CRC,
 *                    size validation) — the fault never reached decode
 *   RejectedInDecode the loader accepted the bytes but the checked
 *                    decompressor returned a structured error
 *   SilentlyCorrect  the image decoded to exactly the original program
 *                    (the fault landed in dead bytes, or was undone)
 *   SilentlyWrong    the image decoded cleanly to DIFFERENT words or
 *                    header fields — the failure mode hardening exists
 *                    to surface; with CRCs on it should be zero
 *
 * A crash/abort anywhere in the pipeline is a campaign failure by
 * definition; the campaign never aborts on any corruption.
 */

#ifndef CPS_FAULT_CAMPAIGN_HH
#define CPS_FAULT_CAMPAIGN_HH

#include "codepack/compressor.hh"
#include "injector.hh"

namespace cps
{
namespace fault
{

/** How one corrupted image was handled. */
enum class Outcome
{
    DetectedAtLoad,
    RejectedInDecode,
    SilentlyCorrect,
    SilentlyWrong,
};

constexpr unsigned kNumOutcomes = 4;

/** Column heading for an outcome. */
const char *outcomeName(Outcome outcome);

/** Campaign parameters. */
struct CampaignConfig
{
    unsigned trials = 200; ///< corruptions per fault kind sweep
    u64 seed = 0x600d5eed; ///< base seed; trial t uses seed + t
    bool verifyCrc = true; ///< check section CRCs at load
};

/** Aggregated campaign counts. */
struct CampaignResult
{
    unsigned trials = 0;
    unsigned byOutcome[kNumOutcomes] = {};
    unsigned byKindOutcome[kNumFaultKinds][kNumOutcomes] = {};
    /** First silently-wrong fault, for replay (valid when any). */
    FaultRecord firstSilentWrong;

    unsigned
    count(Outcome o) const
    {
        return byOutcome[static_cast<unsigned>(o)];
    }

    unsigned
    count(FaultKind k, Outcome o) const
    {
        return byKindOutcome[static_cast<unsigned>(k)]
                            [static_cast<unsigned>(o)];
    }

    unsigned silentlyWrong() const
    {
        return count(Outcome::SilentlyWrong);
    }
};

/**
 * Classifies one corrupted encoded image against the pristine @p img.
 * Never aborts: every path through load and decode is checked.
 */
Outcome classifyCorruption(const codepack::CompressedImage &img,
                           const std::vector<u8> &corrupted,
                           bool verify_crc);

/**
 * Runs cfg.trials corruptions of every fault kind against @p img
 * (cfg.trials * kNumFaultKinds corrupted images in total).
 */
CampaignResult runCampaign(const codepack::CompressedImage &img,
                           const CampaignConfig &cfg);

} // namespace fault
} // namespace cps

#endif // CPS_FAULT_CAMPAIGN_HH
