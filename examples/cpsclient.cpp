/**
 * @file
 * cpsclient: command-line client of the cpserved campaign daemon.
 *
 *   cpsclient ping                         liveness probe
 *   cpsclient stats                        daemon introspection
 *   cpsclient run go,gcc --models native,codepack [--base 4]
 *                 [--insns N] [--deadline MS]
 *
 * The socket path comes from CPS_SERVE_SOCKET (default cpserved.sock).
 * `run` streams one line per cell as the daemon delivers it, annotated
 * with where the result came from (executed / shared / memo / journal),
 * and exits nonzero if the request was rejected, truncated, or any
 * cell failed — same contract as the batch table binaries.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/client.hh"

using namespace cps;
using namespace cps::service;

namespace
{

const char *
socketPath()
{
    const char *env = std::getenv("CPS_SERVE_SOCKET");
    return env && *env ? env : "cpserved.sock";
}

std::vector<std::string>
splitCommas(const std::string &arg)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > start)
            out.push_back(arg.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

bool
parseModel(const std::string &name, u8 *out)
{
    struct Entry
    {
        const char *name;
        CodeModel model;
    };
    static const Entry kModels[] = {
        {"native", CodeModel::Native},
        {"codepack", CodeModel::CodePack},
        {"codepack-opt", CodeModel::CodePackOptimized},
        {"codepack-sw", CodeModel::CodePackSoftware},
        {"native-prefetch", CodeModel::NativePrefetch},
    };
    for (const Entry &e : kModels)
        if (name == e.name) {
            *out = static_cast<u8>(e.model);
            return true;
        }
    return false;
}

const char *
modelName(u8 model)
{
    switch (static_cast<CodeModel>(model)) {
    case CodeModel::Native:
        return "native";
    case CodeModel::CodePack:
        return "codepack";
    case CodeModel::CodePackOptimized:
        return "codepack-opt";
    case CodeModel::CodePackSoftware:
        return "codepack-sw";
    case CodeModel::NativePrefetch:
        return "native-prefetch";
    default:
        return "?";
    }
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cpsclient ping | stats | run <bench[,bench...]>\n"
        "           [--models native,codepack,...] [--base 1|4|8]\n"
        "           [--insns N] [--deadline MS]\n"
        "socket: $CPS_SERVE_SOCKET (default cpserved.sock)\n");
    return 2;
}

int
cmdRun(ServiceClient &client, int argc, char **argv)
{
    std::vector<std::string> benches = splitCommas(argv[0]);
    std::vector<u8> models = {static_cast<u8>(CodeModel::CodePack)};
    BaseMachine base = BaseMachine::Issue4;
    u64 insns = 0;
    u64 deadline_ms = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--models" && value) {
            models.clear();
            for (const std::string &name : splitCommas(value)) {
                u8 model;
                if (!parseModel(name, &model)) {
                    std::fprintf(stderr, "unknown model \"%s\"\n",
                                 name.c_str());
                    return 2;
                }
                models.push_back(model);
            }
            ++i;
        } else if (arg == "--base" && value) {
            long b = std::atol(value);
            if (b == 1)
                base = BaseMachine::Issue1;
            else if (b == 4)
                base = BaseMachine::Issue4;
            else if (b == 8)
                base = BaseMachine::Issue8;
            else {
                std::fprintf(stderr, "bad --base %s\n", value);
                return 2;
            }
            ++i;
        } else if (arg == "--insns" && value) {
            insns = static_cast<u64>(std::atoll(value));
            ++i;
        } else if (arg == "--deadline" && value) {
            deadline_ms = static_cast<u64>(std::atoll(value));
            ++i;
        } else {
            return usage();
        }
    }
    if (benches.empty() || models.empty())
        return usage();

    MatrixRequestMsg msg;
    msg.requestId = static_cast<u32>(::getpid());
    msg.deadlineMs = deadline_ms;
    for (const std::string &bench : benches)
        for (u8 model : models) {
            CellSpec cell;
            cell.bench = bench;
            cell.base = base;
            cell.codeModel = model;
            cell.maxInsns = insns;
            msg.cells.push_back(cell);
        }

    MatrixReply reply = client.runMatrix(msg, 600000);
    if (reply.overloaded) {
        std::fprintf(stderr,
                     "OVERLOADED: %s (queued=%u max=%u) — retry later\n",
                     reply.overload.reason.c_str(),
                     reply.overload.queuedCells, reply.overload.queueMax);
        return 3;
    }
    for (const CellResultMsg &cell : reply.cells) {
        const CellSpec &spec = msg.cells[cell.cellIndex % msg.cells.size()];
        if (cell.status.ok())
            std::printf("%-10s %-16s %10llu cycles  ipc %.3f  [%s]\n",
                        spec.bench.c_str(), modelName(spec.codeModel),
                        (unsigned long long)cell.outcome.result.cycles,
                        cell.outcome.result.ipc(),
                        resultSourceName(cell.source));
        else
            std::printf("%-10s %-16s FAILED: %s\n", spec.bench.c_str(),
                        modelName(spec.codeModel),
                        cell.status.describe().c_str());
    }
    if (!reply.error.empty()) {
        std::fprintf(stderr, "cpsclient: %s\n", reply.error.c_str());
        return 1;
    }
    if (reply.ended && reply.end.status != MatrixEndStatus::Ok) {
        std::fprintf(stderr,
                     "request truncated (%s): ok=%u failed=%u "
                     "cancelled=%u\n",
                     reply.end.status == MatrixEndStatus::DeadlineExpired
                         ? "deadline expired"
                         : "daemon drained",
                     reply.end.okCells, reply.end.failedCells,
                     reply.end.cancelledCells);
        return 1;
    }
    return reply.allOk() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    ServiceClient client;
    if (!client.connect(socketPath(), 5000)) {
        std::fprintf(stderr, "cpsclient: cannot connect to %s\n",
                     socketPath());
        return 1;
    }

    std::string cmd = argv[1];
    if (cmd == "ping") {
        bool ok = client.ping(5000);
        std::printf("%s\n", ok ? "alive" : "no pong");
        return ok ? 0 : 1;
    }
    if (cmd == "stats") {
        std::string text = client.stats(5000);
        if (text.empty()) {
            std::fprintf(stderr, "cpsclient: stats failed\n");
            return 1;
        }
        std::fputs(text.c_str(), stdout);
        return 0;
    }
    if (cmd == "run" && argc >= 3)
        return cmdRun(client, argc - 2, argv + 2);
    return usage();
}
