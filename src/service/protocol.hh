/**
 * @file
 * Wire protocol of the campaign service.
 *
 * Clients and the cpserved daemon exchange CRC-framed messages
 * (common/ipc_frame) over a Unix-domain stream socket. A client sends
 * one MatrixRequest naming experiment cells symbolically — benchmark
 * name, baseline machine, code model, instruction budget — and the
 * daemon streams back one CellResult per cell as it completes
 * (executed, deduplicated against another client's identical in-flight
 * cell, served from the in-memory memo, or replayed from a resume
 * journal), closing the stream with a MatrixEnd summary. Requests the
 * daemon cannot admit are answered with a structured Overloaded
 * rejection instead of being queued without bound.
 *
 * Every message embeds the ids it concerns (requestId, cellIndex), so
 * a reply is interpretable even if frames from concurrent requests on
 * one connection interleave. The result payload reuses the
 * cell-runner's RunOutcome envelope byte-for-byte — the same bytes a
 * forked worker ships over its pipe and a journal stores on disk —
 * which is what makes daemon-served results bit-identical to a batch
 * runMatrixCells() run.
 */

#ifndef CPS_SERVICE_PROTOCOL_HH
#define CPS_SERVICE_PROTOCOL_HH

#include <string>
#include <vector>

#include "harness/cell_runner.hh"

namespace cps
{
namespace service
{

/** Protocol version; bump on any message-shape change. */
constexpr u8 kProtocolVersion = 1;

/** Frame types (the u32 carried by common/ipc_frame). */
enum MsgType : u32
{
    kMsgMatrixRequest = 1, ///< client -> server: run these cells
    kMsgCellResult = 2,    ///< server -> client: one cell finished
    kMsgMatrixEnd = 3,     ///< server -> client: request closed
    kMsgOverloaded = 4,    ///< server -> client: admission rejected
    kMsgPing = 5,          ///< client -> server: health probe
    kMsgPong = 6,          ///< server -> client: alive
    kMsgStatsRequest = 7,  ///< client -> server: introspection
    kMsgStatsReply = 8,    ///< server -> client: key=value lines
    kMsgError = 9,         ///< server -> client: malformed request
};

/** Request frames are small; anything bigger is a hostile length. */
constexpr size_t kMaxRequestPayload = 4u << 20;
/** Reply frames carry one ~100-byte envelope plus headers. */
constexpr size_t kMaxReplyPayload = 1u << 20;

/** The baseline machine a cell starts from (paper Table 2 presets). */
enum class BaseMachine : u8
{
    Issue1 = 0, ///< baseline1Issue()
    Issue4 = 1, ///< baseline4Issue()
    Issue8 = 2, ///< baseline8Issue()
};

/**
 * One requested cell, specified symbolically. The daemon resolves the
 * spec against its own Suite and presets, so client and daemon agree
 * on the full MachineConfig by construction rather than by shipping
 * (and trusting) hundreds of config fields.
 */
struct CellSpec
{
    std::string bench;                          ///< profile name ("go", ...)
    BaseMachine base = BaseMachine::Issue4;     ///< machine preset
    u8 codeModel = 0;                           ///< cps::CodeModel value
    u64 maxInsns = 0;                           ///< 0 = Suite::runInsns()
    u8 injectFault = 0;                         ///< harness::CellFault;
                                                ///< chaos/test use only
};

/** A client's experiment-matrix request. */
struct MatrixRequestMsg
{
    u32 requestId = 0;  ///< echoed in every reply frame
    u64 deadlineMs = 0; ///< 0 = server default; capped by the server
    std::vector<CellSpec> cells;
};

/** Where a streamed result came from. */
enum class ResultSource : u8
{
    Executed = 0, ///< a worker ran this cell for this request
    Shared = 1,   ///< deduplicated onto another request's in-flight cell
    Memo = 2,     ///< served from the daemon's in-memory result memo
    Journal = 3,  ///< replayed from the on-disk resume journal
};

/** Short stable name ("executed", "shared", "memo", "journal"). */
const char *resultSourceName(ResultSource source);

/** One finished (or failed) cell, streamed as it completes. */
struct CellResultMsg
{
    u32 requestId = 0;
    u32 cellIndex = 0;
    harness::CellStatus status; ///< fromJournal unused on the wire
    ResultSource source = ResultSource::Executed;
    RunOutcome outcome; ///< valid only when status.ok()
};

/** Why a request's stream ended. */
enum class MatrixEndStatus : u8
{
    Ok = 0,              ///< every cell reported
    DeadlineExpired = 1, ///< per-request deadline hit; stream truncated
    Drained = 2,         ///< daemon drained (SIGTERM) mid-request
};

/** Closing summary of one request. */
struct MatrixEndMsg
{
    u32 requestId = 0;
    MatrixEndStatus status = MatrixEndStatus::Ok;
    u32 okCells = 0;
    u32 failedCells = 0;
    u32 cancelledCells = 0; ///< never ran (deadline/drain/disconnect)
};

/** Structured admission-control rejection. */
struct OverloadedMsg
{
    u32 requestId = 0;
    u32 queuedCells = 0; ///< queue depth at rejection time
    u32 queueMax = 0;
    std::string reason;
};

std::vector<u8> encodeMatrixRequest(const MatrixRequestMsg &msg);
bool decodeMatrixRequest(const std::vector<u8> &payload,
                         MatrixRequestMsg *out);

std::vector<u8> encodeCellResult(const CellResultMsg &msg);
bool decodeCellResult(const std::vector<u8> &payload, CellResultMsg *out);

std::vector<u8> encodeMatrixEnd(const MatrixEndMsg &msg);
bool decodeMatrixEnd(const std::vector<u8> &payload, MatrixEndMsg *out);

std::vector<u8> encodeOverloaded(const OverloadedMsg &msg);
bool decodeOverloaded(const std::vector<u8> &payload, OverloadedMsg *out);

/**
 * Resolves a symbolic spec into a runnable request against the
 * process-wide Suite. Fails (false, @p err filled) on an unknown
 * benchmark, base machine, code model, or fault id — the daemon
 * rejects the whole request rather than running a guessed config.
 * Fault injection is refused unless @p allow_faults.
 */
bool resolveCellSpec(const CellSpec &spec, bool allow_faults,
                     harness::RunRequest *out, std::string *err);

} // namespace service
} // namespace cps

#endif // CPS_SERVICE_PROTOCOL_HH
