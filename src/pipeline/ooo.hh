/**
 * @file
 * The RUU-based out-of-order pipeline model (paper Table 2, "4-issue" and
 * "8-issue").
 *
 * This follows SimpleScalar's sim-outorder structure: a unified Register
 * Update Unit (reorder buffer + reservation stations), a load/store
 * queue, per-class function-unit pools, W-wide fetch/issue/commit, and a
 * front end with the paper's direction predictors. The model is
 * timing-directed along the correct path: the functional executor
 * supplies the instruction stream; on a misprediction fetch stalls until
 * the branch resolves (wrong-path fetch is not simulated — the cycle
 * penalty matches, wrong-path cache pollution is not modelled, which the
 * paper's relative comparisons do not depend on).
 *
 * Cycle phases: commit -> issue -> fetch/dispatch, then the clock
 * advances (skipping provably idle cycles).
 */

#ifndef CPS_PIPELINE_OOO_HH
#define CPS_PIPELINE_OOO_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "config.hh"
#include "core/trace.hh"
#include "frontend.hh"
#include "inorder.hh"
#include "paths.hh"

namespace cps
{

/** Per-instruction out-of-order timing record (optional tracing). */
struct OooTraceEntry
{
    Addr pc = 0;
    Inst inst;
    Cycle fetchedAt = 0;   ///< cycle the op entered the RUU
    Cycle issuedAt = 0;    ///< cycle it began execution
    Cycle doneAt = 0;      ///< cycle its result was produced
    Cycle committedAt = 0; ///< cycle it retired
};

/** Out-of-order superscalar timing model. */
class OoOPipeline
{
  public:
    /** Drives an arbitrary instruction stream (live or replayed). */
    OoOPipeline(const PipelineConfig &cfg, TraceSource &src,
                FetchPath &fetch, DataPath &data, StatSet &stats);

    /** Convenience: drives @p exec through an owned live source. */
    OoOPipeline(const PipelineConfig &cfg, Executor &exec, FetchPath &fetch,
                DataPath &data, StatSet &stats);

    /** Runs until @p max_insns instructions commit or the program exits. */
    RunResult run(u64 max_insns);

    /** Streams per-instruction timing into @p sink while running (must
     *  outlive the run). Pass nullptr to disable. */
    void setTraceSink(std::vector<OooTraceEntry> *sink) { trace_ = sink; }

    /**
     * Arms a warm-up gate for the next run (chunk-parallel engine):
     * fires in the commit stage the moment gate->warmupInsns
     * instructions have retired. Pass nullptr to disable. The gate
     * must outlive the run.
     */
    void setWarmupGate(WarmupGate *gate) { gate_ = gate; }

  private:
    std::vector<OooTraceEntry> *trace_ = nullptr;
    WarmupGate *gate_ = nullptr;
    /** Function-unit pools, indexed by FuPool. */
    enum FuPool : unsigned
    {
        kFuAlu = 0,
        kFuMult,
        kFuMem,
        kFuFpAlu,
        kFuFpMult,
        kNumFuPools,
    };

    static constexpr u64 kNoSeq = ~static_cast<u64>(0);

    struct Entry
    {
        Addr pc = 0;
        const InstInfo *info = nullptr;
        Inst inst;                 ///< copy, for tracing
        Cycle fetchedAt = 0;       ///< dispatch cycle, for tracing
        Cycle issuedAt = 0;        ///< issue cycle, for tracing
        Op op = Op::Invalid;
        Addr memAddr = 0;
        u64 src[3] = {kNoSeq, kNoSeq, kNoSeq}; ///< producer sequence nums
        u64 blockingStore = kNoSeq; ///< for loads: older same-word store
        bool issued = false;
        Cycle doneAt = kCycleNever;
        bool mispredict = false; ///< resolving this entry restarts fetch
        Addr wrongPath = kAddrInvalid; ///< where fetch runs until resolve
        bool serialize = false;  ///< syscall: drain before/after
    };

    Entry &at(u64 seq) { return ruu_[seq % ruu_.size()]; }

    bool producerDone(u64 seq, Cycle clock);
    FuPool poolFor(InstClass cls) const;
    bool nonPipelined(InstClass cls) const;

    PipelineConfig cfg_;
    std::unique_ptr<LiveTraceSource> ownedSrc_; ///< Executor-ctor wrapper
    TraceSource &src_;
    FetchPath &fetch_;
    DataPath &data_;
    FrontEnd frontend_;
    Counter &statInsns_;
    Counter &statCycles_;

    std::vector<Entry> ruu_;
    u64 headSeq_ = 0;
    u64 tailSeq_ = 0;
    unsigned lsqCount_ = 0;
    std::vector<Cycle> fuFree_[kNumFuPools];
    std::array<u64, kNumUnifiedRegs> regProducer_{};
    std::unordered_map<Addr, u64> lastStoreToWord_;
};

} // namespace cps

#endif // CPS_PIPELINE_OOO_HH
