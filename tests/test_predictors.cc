/**
 * @file
 * Branch predictor tests: bimodal, gshare, hybrid, BTB and RAS.
 */

#include <gtest/gtest.h>

#include "branch/predictors.hh"
#include "common/rng.hh"

namespace cps
{
namespace
{

TEST(Counter2, SaturatesBothEnds)
{
    Counter2 c;
    for (int i = 0; i < 10; ++i)
        c.train(true);
    EXPECT_TRUE(c.taken());
    c.train(false);
    c.train(false);
    EXPECT_FALSE(c.taken()); // two not-takens flip a saturated counter
    for (int i = 0; i < 10; ++i)
        c.train(false);
    c.train(true);
    EXPECT_FALSE(c.taken()); // one taken does not flip saturated-NT
    c.train(true);
    EXPECT_TRUE(c.taken());
}

TEST(Bimodal, LearnsBiasedBranch)
{
    BimodalPredictor p(2048);
    Addr pc = 0x1000;
    for (int i = 0; i < 10; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
    for (int i = 0; i < 10; ++i)
        p.update(pc, false);
    EXPECT_FALSE(p.predict(pc));
}

TEST(Bimodal, IndependentEntries)
{
    BimodalPredictor p(2048);
    for (int i = 0; i < 10; ++i) {
        p.update(0x1000, true);
        p.update(0x1004, false);
    }
    EXPECT_TRUE(p.predict(0x1000));
    EXPECT_FALSE(p.predict(0x1004));
}

TEST(Bimodal, CannotLearnAlternation)
{
    BimodalPredictor p(2048);
    Addr pc = 0x2000;
    int correct = 0;
    bool dir = false;
    for (int i = 0; i < 1000; ++i) {
        dir = !dir;
        correct += (p.predict(pc) == dir);
        p.update(pc, dir);
    }
    // A 2-bit counter is near-chance on strict alternation.
    EXPECT_LT(correct, 700);
}

TEST(Gshare, LearnsAlternationViaHistory)
{
    GsharePredictor p(14);
    Addr pc = 0x2000;
    bool dir = false;
    int correct = 0;
    for (int i = 0; i < 2000; ++i) {
        dir = !dir;
        bool pred = p.predict(pc);
        if (i >= 1000)
            correct += (pred == dir);
        p.update(pc, dir);
    }
    EXPECT_GT(correct, 950); // near-perfect after warmup
}

TEST(Gshare, LearnsShortPeriodicPattern)
{
    GsharePredictor p(14);
    Addr pc = 0x3000;
    const bool pattern[] = {true, true, false, true, false};
    int correct = 0;
    for (int i = 0; i < 5000; ++i) {
        bool dir = pattern[i % 5];
        bool pred = p.predict(pc);
        if (i >= 2000)
            correct += (pred == dir);
        p.update(pc, dir);
    }
    EXPECT_GT(correct, 2800); // > 93%
}

TEST(Hybrid, AtLeastAsGoodAsComponentsOnMixedWork)
{
    // A biased branch (bimodal wins) and an alternating branch (gshare
    // wins): the meta chooser should track both.
    HybridPredictor p(1024);
    Addr biased = 0x4000, alt = 0x5000;
    bool dir = false;
    int correct = 0, total = 0;
    for (int i = 0; i < 4000; ++i) {
        // biased branch, 95% taken
        bool b = (i % 20) != 0;
        if (i >= 2000) {
            correct += (p.predict(biased) == b);
            ++total;
        }
        p.update(biased, b);
        dir = !dir;
        if (i >= 2000) {
            correct += (p.predict(alt) == dir);
            ++total;
        }
        p.update(alt, dir);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.90);
}

TEST(Predictors, DescribeStrings)
{
    EXPECT_NE(BimodalPredictor(2048).describe().find("bimodal"),
              std::string::npos);
    EXPECT_NE(GsharePredictor(14).describe().find("gshare"),
              std::string::npos);
    EXPECT_NE(HybridPredictor(1024).describe().find("hybrid"),
              std::string::npos);
}

// -------------------------------------------------------------------- BTB

TEST(Btb, MissReturnsInvalid)
{
    Btb btb;
    EXPECT_EQ(btb.lookup(0x1000), kAddrInvalid);
}

TEST(Btb, StoresAndRefreshesTargets)
{
    Btb btb;
    btb.update(0x1000, 0x2000);
    EXPECT_EQ(btb.lookup(0x1000), 0x2000u);
    btb.update(0x1000, 0x3000); // retarget
    EXPECT_EQ(btb.lookup(0x1000), 0x3000u);
}

TEST(Btb, SetConflictEvictsLru)
{
    Btb btb(8, 2); // 4 sets, 2 ways
    // All these PCs map to set 0 (pc>>2 & 3 == 0).
    btb.update(0x00, 0x100);
    btb.update(0x10, 0x200);
    EXPECT_EQ(btb.lookup(0x00), 0x100u); // refresh
    btb.update(0x20, 0x300);             // evicts 0x10
    EXPECT_EQ(btb.lookup(0x00), 0x100u);
    EXPECT_EQ(btb.lookup(0x10), kAddrInvalid);
    EXPECT_EQ(btb.lookup(0x20), 0x300u);
}

TEST(Btb, ManyEntriesNoInterference)
{
    Btb btb(512, 4);
    for (u32 i = 0; i < 256; ++i)
        btb.update(0x1000 + i * 4, 0x9000 + i * 4);
    for (u32 i = 0; i < 256; ++i)
        EXPECT_EQ(btb.lookup(0x1000 + i * 4), 0x9000u + i * 4);
}

// -------------------------------------------------------------------- RAS

TEST(Ras, PopEmptyReturnsInvalid)
{
    ReturnAddressStack ras(8);
    EXPECT_EQ(ras.pop(), kAddrInvalid);
}

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), kAddrInvalid);
}

TEST(Ras, OverflowWrapsDroppingOldest)
{
    ReturnAddressStack ras(2);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300); // drops 0x100
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), kAddrInvalid);
}

TEST(Ras, CallReturnNesting)
{
    ReturnAddressStack ras(8);
    // main -> a -> b; returns unwind correctly.
    ras.push(0x1004); // call a
    ras.push(0x2008); // call b
    EXPECT_EQ(ras.pop(), 0x2008u); // ret from b
    ras.push(0x200c); // call c
    EXPECT_EQ(ras.pop(), 0x200cu);
    EXPECT_EQ(ras.pop(), 0x1004u); // ret from a
}

} // namespace
} // namespace cps
