/**
 * @file
 * Parallel experiment engine: fans a matrix of independent, deterministic
 * (benchmark x machine-config) timed runs out across a thread pool and
 * returns the outcomes in submission order.
 *
 * Determinism contract: every Machine is self-contained (its own stats,
 * memory, caches and decompressor state), each run writes only its own
 * pre-allocated outcome slot, and the caller does all printing after
 * collection — so a table binary's stdout is byte-identical at any
 * CPS_THREADS value, including 1 (which runs inline with no pool).
 */

#ifndef CPS_HARNESS_ENGINE_HH
#define CPS_HARNESS_ENGINE_HH

#include <vector>

#include "suite.hh"

namespace cps
{
namespace harness
{

/** One cell of an experiment matrix. */
struct RunRequest
{
    const BenchProgram *bench = nullptr; ///< must outlive runMatrix()
    MachineConfig cfg;
    u64 maxInsns = 0;
    ReplayMode mode = ReplayMode::Auto; ///< trace replay vs live core
};

/**
 * Runs every request (each through runMachine) and returns the outcomes
 * in submission order.
 * @param requests the matrix cells; each bench pointer must be valid
 * @param threads worker count; 0 means defaultThreadCount()
 */
std::vector<RunOutcome> runMatrix(const std::vector<RunRequest> &requests,
                                  unsigned threads = 0);

/**
 * A request batch that keeps the submit-then-consume shape of the table
 * binaries readable: add() cells inside the same nested loops that will
 * later format the rows, run() once, then take() the outcomes in the
 * same order.
 */
class Matrix
{
  public:
    /** Queues one run; returns its slot index. */
    size_t
    add(const BenchProgram &bench, const MachineConfig &cfg, u64 max_insns)
    {
        requests_.push_back(RunRequest{&bench, cfg, max_insns});
        return requests_.size() - 1;
    }

    /** Executes all queued runs (parallel; see runMatrix). */
    void
    run(unsigned threads = 0)
    {
        outcomes_ = runMatrix(requests_, threads);
        cursor_ = 0;
    }

    /** Number of queued requests. */
    size_t size() const { return requests_.size(); }

    /** The outcome of slot @p i (valid after run()). */
    const RunOutcome &outcome(size_t i) const { return outcomes_.at(i); }

    /** The next outcome in submission order (valid after run()). */
    const RunOutcome &
    next()
    {
        return outcomes_.at(cursor_++);
    }

  private:
    std::vector<RunRequest> requests_;
    std::vector<RunOutcome> outcomes_;
    size_t cursor_ = 0;
};

} // namespace harness
} // namespace cps

#endif // CPS_HARNESS_ENGINE_HH
