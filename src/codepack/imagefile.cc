#include "imagefile.hh"

#include "common/byteio.hh"
#include "common/logging.hh"

namespace cps
{
namespace codepack
{

namespace
{

constexpr char kMagic[8] = {'C', 'P', 'S', 'C', 'P', 'K', '1', '\0'};

void
putDictionary(std::vector<u8> &out, const Dictionary &dict)
{
    put8(out, static_cast<u8>(dict.numBanks()));
    for (unsigned b = 0; b < dict.numBanks(); ++b) {
        const std::vector<u16> &entries = dict.bankEntries(b);
        put16(out, static_cast<u16>(entries.size()));
        for (u16 e : entries)
            put16(out, e);
    }
}

std::optional<Dictionary>
getDictionary(ByteCursor &cur, Dictionary::Kind kind)
{
    unsigned banks = cur.get8();
    unsigned expect = kind == Dictionary::Kind::High ? kNumHighBanks
                                                     : kNumLowBanks;
    if (!cur.ok() || banks != expect)
        return std::nullopt;
    std::vector<std::vector<u16>> entries(banks);
    const Bank *bank_desc =
        kind == Dictionary::Kind::High ? kHighBanks : kLowBanks;
    for (unsigned b = 0; b < banks; ++b) {
        u16 count = cur.get16();
        if (!cur.ok() || count > bank_desc[b].entries())
            return std::nullopt;
        entries[b].reserve(count);
        for (u16 i = 0; i < count; ++i)
            entries[b].push_back(cur.get16());
    }
    if (!cur.ok())
        return std::nullopt;
    return Dictionary::fromBankEntries(kind, entries);
}

} // namespace

std::vector<u8>
encodeImage(const CompressedImage &img)
{
    std::vector<u8> out;
    for (char c : kMagic)
        out.push_back(static_cast<u8>(c));
    put32(out, img.textBase);
    put32(out, img.origTextBytes);
    put32(out, img.paddedInsns);

    put32(out, static_cast<u32>(img.indexTable.size()));
    for (u32 e : img.indexTable)
        put32(out, e);

    put32(out, static_cast<u32>(img.bytes.size()));
    out.insert(out.end(), img.bytes.begin(), img.bytes.end());

    putDictionary(out, img.highDict);
    putDictionary(out, img.lowDict);

    put32(out, static_cast<u32>(img.blocks.size()));
    for (const BlockExtent &b : img.blocks) {
        put32(out, b.byteOffset);
        put32(out, b.byteLen);
        put8(out, b.raw ? 1 : 0);
    }

    put64(out, img.comp.indexTableBits);
    put64(out, img.comp.dictionaryBits);
    put64(out, img.comp.compressedTagBits);
    put64(out, img.comp.dictIndexBits);
    put64(out, img.comp.rawTagBits);
    put64(out, img.comp.rawBits);
    put64(out, img.comp.padBits);
    return out;
}

std::optional<CompressedImage>
decodeImage(const std::vector<u8> &bytes)
{
    ByteCursor cur(bytes);
    if (!cur.expectMagic(kMagic, sizeof(kMagic)))
        return std::nullopt;

    CompressedImage img;
    img.textBase = cur.get32();
    img.origTextBytes = cur.get32();
    img.paddedInsns = cur.get32();

    u32 groups = cur.get32();
    if (!cur.ok() || groups != img.paddedInsns / kGroupInsns)
        return std::nullopt;
    img.indexTable.reserve(groups);
    for (u32 i = 0; i < groups; ++i)
        img.indexTable.push_back(cur.get32());

    u32 stream_len = cur.get32();
    img.bytes = cur.getBytes(stream_len);

    auto high = getDictionary(cur, Dictionary::Kind::High);
    auto low = getDictionary(cur, Dictionary::Kind::Low);
    if (!high || !low)
        return std::nullopt;
    img.highDict = *high;
    img.lowDict = *low;

    u32 num_blocks = cur.get32();
    if (!cur.ok() || num_blocks != groups * kBlocksPerGroup)
        return std::nullopt;
    img.blocks.reserve(num_blocks);
    for (u32 i = 0; i < num_blocks; ++i) {
        BlockExtent b;
        b.byteOffset = cur.get32();
        b.byteLen = cur.get32();
        b.raw = cur.get8() != 0;
        img.blocks.push_back(b);
    }

    img.comp.indexTableBits = cur.get64();
    img.comp.dictionaryBits = cur.get64();
    img.comp.compressedTagBits = cur.get64();
    img.comp.dictIndexBits = cur.get64();
    img.comp.rawTagBits = cur.get64();
    img.comp.rawBits = cur.get64();
    img.comp.padBits = cur.get64();

    if (!cur.ok())
        return std::nullopt;
    return img;
}

bool
saveImage(const CompressedImage &img, const std::string &path)
{
    return writeFileBytes(path, encodeImage(img));
}

std::optional<CompressedImage>
loadImage(const std::string &path)
{
    auto bytes = readFileBytes(path);
    if (!bytes)
        return std::nullopt;
    return decodeImage(*bytes);
}

} // namespace codepack
} // namespace cps
