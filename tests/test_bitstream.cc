/**
 * @file
 * Unit and property tests for the MSB-first bitstream codec that carries
 * CodePack codewords.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/bitstream.hh"
#include "common/rng.hh"

namespace cps
{
namespace
{

TEST(BitWriter, EmptyStream)
{
    BitWriter bw;
    EXPECT_EQ(bw.bitSize(), 0u);
    EXPECT_EQ(bw.byteSize(), 0u);
    EXPECT_TRUE(bw.byteAligned());
}

TEST(BitWriter, MsbFirstWithinByte)
{
    BitWriter bw;
    bw.put(1, 1); // writes the MSB of byte 0
    EXPECT_EQ(bw.bytes()[0], 0x80);
    bw.put(1, 1);
    EXPECT_EQ(bw.bytes()[0], 0xc0);
}

TEST(BitWriter, FieldSpansBytes)
{
    BitWriter bw;
    bw.put(0xabc, 12);
    ASSERT_EQ(bw.byteSize(), 2u);
    EXPECT_EQ(bw.bytes()[0], 0xab);
    EXPECT_EQ(bw.bytes()[1], 0xc0); // low 4 bits in the high nibble
    EXPECT_EQ(bw.bitSize(), 12u);
}

TEST(BitWriter, AlignByteReturnsPadCount)
{
    BitWriter bw;
    bw.put(0x3, 3);
    EXPECT_EQ(bw.alignByte(), 5u);
    EXPECT_TRUE(bw.byteAligned());
    EXPECT_EQ(bw.alignByte(), 0u); // already aligned
}

TEST(BitReader, ReadsBackWrittenFields)
{
    BitWriter bw;
    bw.put(0x5, 3);
    bw.put(0x1ff, 9);
    bw.put(0, 2);
    bw.put(0xffffffff, 32);
    bw.alignByte();
    auto bytes = bw.take();

    BitReader br(bytes);
    EXPECT_EQ(br.get(3), 0x5u);
    EXPECT_EQ(br.get(9), 0x1ffu);
    EXPECT_EQ(br.get(2), 0u);
    EXPECT_EQ(br.get(32), 0xffffffffu);
}

TEST(BitReader, PeekDoesNotConsume)
{
    BitWriter bw;
    bw.put(0xa5, 8);
    auto bytes = bw.take();
    BitReader br(bytes);
    EXPECT_EQ(br.peek(4), 0xau);
    EXPECT_EQ(br.peek(8), 0xa5u);
    EXPECT_EQ(br.get(8), 0xa5u);
}

TEST(BitReader, SeekAndPos)
{
    BitWriter bw;
    bw.put(0xdead, 16);
    auto bytes = bw.take();
    BitReader br(bytes);
    br.get(4);
    EXPECT_EQ(br.bitPos(), 4u);
    EXPECT_TRUE(br.seekBit(8));
    EXPECT_EQ(br.get(8), 0xadu);
    EXPECT_TRUE(br.seekBit(0));
    EXPECT_EQ(br.get(16), 0xdeadu);
}

TEST(BitReader, SeekPastEndIsRejected)
{
    std::vector<u8> bytes{0xaa, 0xbb};
    BitReader br(bytes);
    br.get(4);
    EXPECT_FALSE(br.seekBit(17));
    EXPECT_EQ(br.bitPos(), 4u); // cursor unmoved by the failed seek
    EXPECT_TRUE(br.seekBit(16)); // end-of-stream is a valid position
    EXPECT_EQ(br.remaining(), 0u);
}

TEST(BitReader, TryReadStopsAtUnderrun)
{
    std::vector<u8> bytes{0xf0};
    BitReader br(bytes);
    u32 v = 0;
    ASSERT_TRUE(br.tryRead(4, v));
    EXPECT_EQ(v, 0xfu);
    EXPECT_FALSE(br.tryRead(5, v)); // only 4 bits left
    EXPECT_EQ(br.bitPos(), 4u);     // cursor unmoved by the failed read
    ASSERT_TRUE(br.tryRead(4, v));
    EXPECT_EQ(v, 0x0u);
    EXPECT_FALSE(br.tryRead(1, v));
    EXPECT_FALSE(br.tryRead(33, v)); // width out of range, not an abort
}

TEST(BitReader, SkipToByte)
{
    BitWriter bw;
    bw.put(0x1, 3);
    bw.alignByte();
    bw.put(0x77, 8);
    auto bytes = bw.take();
    BitReader br(bytes);
    br.get(3);
    br.skipToByte();
    EXPECT_EQ(br.get(8), 0x77u);
}

TEST(BitReader, BitsLeftTracksConsumption)
{
    std::vector<u8> bytes{0xff, 0x00};
    BitReader br(bytes);
    EXPECT_EQ(br.bitsLeft(), 16u);
    br.get(5);
    EXPECT_EQ(br.bitsLeft(), 11u);
}

/** Property: any sequence of variable-width fields round-trips. */
TEST(BitStream, RandomFieldSequencesRoundTrip)
{
    Rng rng(1234);
    for (int trial = 0; trial < 200; ++trial) {
        BitWriter bw;
        std::vector<std::pair<u32, unsigned>> fields;
        unsigned nfields = 1 + static_cast<unsigned>(rng.below(64));
        for (unsigned i = 0; i < nfields; ++i) {
            unsigned width = 1 + static_cast<unsigned>(rng.below(32));
            u32 value = static_cast<u32>(rng.next());
            if (width < 32)
                value &= (1u << width) - 1;
            fields.emplace_back(value, width);
            bw.put(value, width);
        }
        unsigned pad = bw.alignByte();
        EXPECT_LT(pad, 8u);
        auto bytes = bw.take();

        BitReader br(bytes);
        for (auto [value, width] : fields)
            ASSERT_EQ(br.get(width), value);
    }
}

/** Property: bitSize equals the sum of written widths (before align). */
TEST(BitStream, BitSizeAccumulates)
{
    Rng rng(99);
    BitWriter bw;
    size_t total = 0;
    for (int i = 0; i < 500; ++i) {
        unsigned width = 1 + static_cast<unsigned>(rng.below(24));
        bw.put(0, width);
        total += width;
        ASSERT_EQ(bw.bitSize(), total);
    }
}

} // namespace
} // namespace cps
