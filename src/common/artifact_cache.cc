#include "artifact_cache.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "byteio.hh"
#include "crc32.hh"
#include "logging.hh"

namespace cps
{

namespace
{

constexpr char kMagic[8] = {'C', 'P', 'S', 'A', 'R', 'T', '1', '\0'};

/** Distinguishes the temp files of concurrent writers in one process. */
std::atomic<u64> tmpSeq{0};

} // namespace

ArtifactCache::ArtifactCache(std::string dir, bool enabled, u64 max_bytes)
    : dir_(std::move(dir)), enabled_(enabled), maxBytes_(max_bytes)
{
    if (enabled_)
        maintain();
}

const ArtifactCache &
ArtifactCache::instance()
{
    static const ArtifactCache cache = [] {
        bool enabled = true;
        if (const char *env = std::getenv("CPS_ARTIFACT_CACHE"))
            enabled = std::string(env) != "0";
        std::string dir = ".cps-cache";
        if (const char *env = std::getenv("CPS_CACHE_DIR"))
            if (*env != '\0')
                dir = env;
        u64 max_bytes = 0;
        if (const char *env = std::getenv("CPS_CACHE_MAX_BYTES")) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(env, &end, 10);
            if (end && *end == '\0')
                max_bytes = static_cast<u64>(v);
            else
                envWarnOnce("CPS_CACHE_MAX_BYTES", env,
                            "a byte count");
        }
        return ArtifactCache(dir, enabled, max_bytes);
    }();
    return cache;
}

void
ArtifactCache::maintain(u64 tmp_age_seconds) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::directory_iterator it(dir_, ec);
    if (ec)
        return; // no directory yet (or unreadable): nothing to clean

    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        u64 size;
    };
    std::vector<Entry> entries;
    u64 total = 0;
    const auto now = fs::file_time_type::clock::now();

    for (const fs::directory_entry &de : it) {
        if (!de.is_regular_file(ec))
            continue;
        const std::string name = de.path().filename().string();
        fs::file_time_type mtime = de.last_write_time(ec);
        if (ec)
            continue;
        if (name.find(".tmp.") != std::string::npos) {
            // A writer publishes its temp file within milliseconds of
            // creating it; an old one belongs to a killed process.
            auto age = std::chrono::duration_cast<std::chrono::seconds>(
                           now - mtime)
                           .count();
            if (age >= 0 && static_cast<u64>(age) >= tmp_age_seconds)
                fs::remove(de.path(), ec);
            continue;
        }
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".art") == 0) {
            u64 size = de.file_size(ec);
            if (ec)
                continue;
            entries.push_back(Entry{de.path(), mtime, size});
            total += size;
        }
    }

    if (maxBytes_ == 0 || total <= maxBytes_)
        return;
    // Evict least-recently-used first. load() touches entries, so
    // mtime approximates last use well enough for a best-effort bound.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    for (const Entry &e : entries) {
        if (total <= maxBytes_)
            break;
        if (fs::remove(e.path, ec))
            total -= e.size;
    }
}

std::string
ArtifactCache::keyHash(const std::string &key)
{
    // FNV-1a 64. Collisions are defended against by storing (and
    // checking) the full key inside the entry, so the hash only has to
    // spread file names, not be cryptographic.
    u64 h = 14695981039346656037ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
ArtifactCache::entryPath(const std::string &key) const
{
    return dir_ + "/" + keyHash(key) + ".art";
}

std::optional<std::vector<u8>>
ArtifactCache::load(const std::string &key) const
{
    if (!enabled_)
        return std::nullopt;
    auto bytes = readFileBytes(entryPath(key));
    if (!bytes)
        return std::nullopt; // miss

    // Everything below is verification of untrusted bytes: any failure
    // is a miss, never an error (the caller recomputes and overwrites).
    const std::vector<u8> &buf = *bytes;
    if (buf.size() < sizeof(kMagic) + 4 + 4 + 4)
        return std::nullopt;
    u32 stored_crc = static_cast<u32>(buf[buf.size() - 4]) |
                     (static_cast<u32>(buf[buf.size() - 3]) << 8) |
                     (static_cast<u32>(buf[buf.size() - 2]) << 16) |
                     (static_cast<u32>(buf[buf.size() - 1]) << 24);
    if (crc32(buf.data(), buf.size() - 4) != stored_crc)
        return std::nullopt; // torn or bit-flipped entry

    ByteCursor cur(buf);
    if (!cur.expectMagic(kMagic, sizeof(kMagic)))
        return std::nullopt;
    u32 key_len = cur.get32();
    if (!cur.ok() || key_len != key.size())
        return std::nullopt;
    std::string stored_key = cur.getString(key_len);
    if (!cur.ok() || stored_key != key)
        return std::nullopt; // hash collision: treat as a miss
    u32 payload_len = cur.get32();
    if (!cur.ok() || cur.remaining() != size_t{payload_len} + 4)
        return std::nullopt;

    // Touch the entry so LRU eviction (maintain) sees it as recent.
    std::error_code ec;
    std::filesystem::last_write_time(
        entryPath(key), std::filesystem::file_time_type::clock::now(), ec);

    return cur.getBytes(payload_len);
}

bool
ArtifactCache::store(const std::string &key,
                     const std::vector<u8> &payload) const
{
    if (!enabled_)
        return false;

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        return false;

    std::vector<u8> out;
    out.reserve(sizeof(kMagic) + 12 + key.size() + payload.size());
    for (char c : kMagic)
        out.push_back(static_cast<u8>(c));
    put32(out, static_cast<u32>(key.size()));
    out.insert(out.end(), key.begin(), key.end());
    put32(out, static_cast<u32>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    put32(out, crc32(out));

    // Write to a writer-private temp name in the same directory, then
    // publish with rename(2): readers see the old entry or the complete
    // new one, never a partial write, and the last concurrent writer of
    // a key wins with a valid entry.
    std::string tmp = strfmt(
        "%s/%s.tmp.%ld.%llu", dir_.c_str(), keyHash(key).c_str(),
        static_cast<long>(getpid()),
        static_cast<unsigned long long>(
            tmpSeq.fetch_add(1, std::memory_order_relaxed)));
    if (!writeFileBytes(tmp, out))
        return false;
    std::filesystem::rename(tmp, entryPath(key), ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace cps
