/**
 * @file
 * Quickstart: the five-minute tour of the library.
 *
 *   1. Assemble a program for the simulated 32-bit RISC ISA.
 *   2. Compress its text with CodePack.
 *   3. Run it on the paper's 4-issue machine, natively and compressed.
 *   4. Compare code size and cycles.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "asmkit/assembler.hh"
#include "codepack/compressor.hh"
#include "sim/machine.hh"

using namespace cps;

int
main()
{
    // 1. A small program: sum the first 100,000 integers, print the
    //    running total's low bits, exit.
    const char *source = R"(
.data
buf:    .space 64
.text
main:
    li   $t0, 0          # sum
    li   $t1, 100000     # i
loop:
    addu $t0, $t0, $t1
    andi $t2, $t0, 0xff
    sw   $t2, 0($gp)
    addiu $t1, $t1, -1
    bgtz $t1, loop
    move $a0, $t0
    li   $v0, 1          # print_int
    syscall
    li   $v0, 10         # exit
    syscall
)";
    Program prog = assembleOrDie(source);
    std::printf("assembled: %zu instructions at 0x%x\n",
                prog.textWords(), prog.text.base);

    // 2. Compress the text with CodePack.
    codepack::CompressedImage image = codepack::compress(prog);
    std::printf("codepack: %u -> %llu bytes (ratio %.1f%%; the fixed"
                " dictionary+index-table overheads dominate tiny programs"
                " -- see Table 3 for real sizes)\n",
                image.origTextBytes,
                static_cast<unsigned long long>(image.comp.totalBytes()),
                100.0 * image.compressionRatio());

    // 3. Run on the 4-issue machine: native, baseline CodePack, and the
    //    optimized decompressor.
    struct Row { const char *label; CodeModel model; };
    const Row rows[] = {
        {"native", CodeModel::Native},
        {"codepack (baseline)", CodeModel::CodePack},
        {"codepack (optimized)", CodeModel::CodePackOptimized},
    };
    for (const Row &row : rows) {
        Machine machine(prog, baseline4Issue().withCodeModel(row.model),
                        &image);
        RunResult r = machine.run(2000000);
        std::printf("%-22s %8llu cycles, IPC %.3f, output \"%s\"\n",
                    row.label,
                    static_cast<unsigned long long>(r.cycles), r.ipc(),
                    machine.executor().output().c_str());
    }

    std::printf("\n(A tight warm loop barely misses the I-cache, so the "
                "three models tie;\n see examples/embedded_tradeoff for "
                "a scenario where they do not.)\n");
    return 0;
}
