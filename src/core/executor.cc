#include "executor.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace cps
{

Executor::Executor(const DecodedText &text, MainMemory &mem)
    : text_(text), mem_(mem)
{}

void
Executor::reset(const Program &prog)
{
    state_.resetFor(prog);
    halted_ = false;
    instCount_ = 0;
    mix_ = MixStats{};
    output_.clear();
}

void
Executor::doSyscall()
{
    u32 code = state_.readGpr(kRegV0);
    u32 arg = state_.readGpr(kRegA0);
    switch (code) {
      case 1: // print_int
        output_ += strfmt("%d", static_cast<s32>(arg));
        break;
      case 4: { // print_string
        Addr a = arg;
        bool terminated = false;
        for (unsigned guard = 0; guard < 65536; ++guard) {
            u8 c = mem_.read8(a++);
            if (c == 0) {
                terminated = true;
                break;
            }
            output_ += static_cast<char>(c);
        }
        // A missing NUL means the program is scribbling past its
        // string (or passed a bad pointer); truncating silently makes
        // that miserable to debug.
        if (!terminated)
            cps_warn("print_string at 0x%x not NUL-terminated within "
                     "65536 bytes; output truncated (pc 0x%x)",
                     arg, state_.pc);
        break;
      }
      case 10: // exit
        halted_ = true;
        break;
      case 11: // print_char
        output_ += static_cast<char>(arg & 0xff);
        break;
      default:
        cps_warn("unknown syscall %u ignored", code);
        break;
    }
}

StepRecord
Executor::step()
{
    cps_assert(!halted_, "step() after halt");

    StepRecord rec;
    rec.pc = state_.pc;
    const Inst &inst = text_.inst(state_.pc);
    const InstInfo &info = text_.info(state_.pc);
    rec.inst = &inst;
    rec.info = &info;

    Addr next = state_.pc + 4;
    ArchState &st = state_;
    s32 simm = signExtend(inst.imm, 16);
    u32 uimm = inst.imm;

    auto rs = [&] { return st.readGpr(inst.rs); };
    auto rt = [&] { return st.readGpr(inst.rt); };
    auto wr_rd = [&](u32 v) { st.writeGpr(inst.rd, v); };
    auto wr_rt = [&](u32 v) { st.writeGpr(inst.rt, v); };
    auto fs = [&] { return st.fprAsFloat(inst.rd); };
    auto ft = [&] { return st.fprAsFloat(inst.rt); };
    auto wr_fd = [&](float v) { st.writeFpr(inst.shamt, v); };

    auto branch_to = [&](bool take) {
        rec.taken = take;
        if (take)
            next = state_.pc + 4 + (static_cast<u32>(simm) << 2);
    };

    auto ea = [&] {
        Addr a = rs() + static_cast<u32>(simm);
        rec.memAddr = a;
        return a;
    };

    switch (inst.op) {
      case Op::Add: case Op::Addu: wr_rd(rs() + rt()); break;
      case Op::Sub: case Op::Subu: wr_rd(rs() - rt()); break;
      case Op::And: wr_rd(rs() & rt()); break;
      case Op::Or: wr_rd(rs() | rt()); break;
      case Op::Xor: wr_rd(rs() ^ rt()); break;
      case Op::Nor: wr_rd(~(rs() | rt())); break;
      case Op::Slt:
        wr_rd(static_cast<s32>(rs()) < static_cast<s32>(rt()) ? 1 : 0);
        break;
      case Op::Sltu: wr_rd(rs() < rt() ? 1 : 0); break;
      case Op::Sll: wr_rd(rt() << inst.shamt); break;
      case Op::Srl: wr_rd(rt() >> inst.shamt); break;
      case Op::Sra:
        wr_rd(static_cast<u32>(static_cast<s32>(rt()) >> inst.shamt));
        break;
      case Op::Sllv: wr_rd(rt() << (rs() & 31)); break;
      case Op::Srlv: wr_rd(rt() >> (rs() & 31)); break;
      case Op::Srav:
        wr_rd(static_cast<u32>(static_cast<s32>(rt()) >> (rs() & 31)));
        break;
      case Op::Mul:
        // Widen before multiplying: s32*s32 overflows (UB) on large
        // operands; the architected result is the wrapped low 32 bits.
        wr_rd(static_cast<u32>(static_cast<s64>(static_cast<s32>(rs())) *
                               static_cast<s32>(rt())));
        break;
      case Op::Mulu: wr_rd(rs() * rt()); break;
      case Op::Div: {
        s32 a = static_cast<s32>(rs()), b = static_cast<s32>(rt());
        // Division by zero and INT_MIN/-1 are architecturally defined to
        // produce 0 in this ISA (no traps).
        bool bad = (b == 0) || (a == INT32_MIN && b == -1);
        wr_rd(bad ? 0 : static_cast<u32>(a / b));
        break;
      }
      case Op::Divu: wr_rd(rt() == 0 ? 0 : rs() / rt()); break;
      case Op::Rem: {
        s32 a = static_cast<s32>(rs()), b = static_cast<s32>(rt());
        bool bad = (b == 0) || (a == INT32_MIN && b == -1);
        wr_rd(bad ? 0 : static_cast<u32>(a % b));
        break;
      }
      case Op::Remu: wr_rd(rt() == 0 ? 0 : rs() % rt()); break;

      case Op::Addi: case Op::Addiu:
        wr_rt(rs() + static_cast<u32>(simm));
        break;
      case Op::Slti:
        wr_rt(static_cast<s32>(rs()) < simm ? 1 : 0);
        break;
      case Op::Sltiu:
        wr_rt(rs() < static_cast<u32>(simm) ? 1 : 0);
        break;
      case Op::Andi: wr_rt(rs() & uimm); break;
      case Op::Ori: wr_rt(rs() | uimm); break;
      case Op::Xori: wr_rt(rs() ^ uimm); break;
      case Op::Lui: wr_rt(uimm << 16); break;

      case Op::Lb:
        wr_rt(static_cast<u32>(signExtend(mem_.read8(ea()), 8)));
        break;
      case Op::Lbu: wr_rt(mem_.read8(ea())); break;
      case Op::Lh: {
        Addr a = ea();
        cps_assert((a & 1) == 0, "unaligned lh at 0x%x", a);
        wr_rt(static_cast<u32>(signExtend(mem_.read16(a), 16)));
        break;
      }
      case Op::Lhu: {
        Addr a = ea();
        cps_assert((a & 1) == 0, "unaligned lhu at 0x%x", a);
        wr_rt(mem_.read16(a));
        break;
      }
      case Op::Lw: {
        Addr a = ea();
        cps_assert((a & 3) == 0, "unaligned lw at 0x%x", a);
        wr_rt(mem_.read32(a));
        break;
      }
      case Op::Lwc1: {
        Addr a = ea();
        cps_assert((a & 3) == 0, "unaligned lwc1 at 0x%x", a);
        st.fpr[inst.rt] = mem_.read32(a);
        break;
      }
      case Op::Sb: mem_.write8(ea(), static_cast<u8>(rt())); break;
      case Op::Sh: {
        Addr a = ea();
        cps_assert((a & 1) == 0, "unaligned sh at 0x%x", a);
        mem_.write16(a, static_cast<u16>(rt()));
        break;
      }
      case Op::Sw: {
        Addr a = ea();
        cps_assert((a & 3) == 0, "unaligned sw at 0x%x", a);
        mem_.write32(a, rt());
        break;
      }
      case Op::Swc1: {
        Addr a = ea();
        cps_assert((a & 3) == 0, "unaligned swc1 at 0x%x", a);
        mem_.write32(a, st.fpr[inst.rt]);
        break;
      }

      case Op::J:
        rec.taken = true;
        next = (state_.pc & 0xf0000000u) | (inst.target << 2);
        break;
      case Op::Jal:
        rec.taken = true;
        st.writeGpr(kRegRa, state_.pc + 4);
        next = (state_.pc & 0xf0000000u) | (inst.target << 2);
        break;
      case Op::Jr:
        rec.taken = true;
        next = rs();
        break;
      case Op::Jalr: {
        rec.taken = true;
        Addr target = rs();
        st.writeGpr(inst.rd, state_.pc + 4);
        next = target;
        break;
      }

      case Op::Beq: branch_to(rs() == rt()); break;
      case Op::Bne: branch_to(rs() != rt()); break;
      case Op::Blez: branch_to(static_cast<s32>(rs()) <= 0); break;
      case Op::Bgtz: branch_to(static_cast<s32>(rs()) > 0); break;
      case Op::Bltz: branch_to(static_cast<s32>(rs()) < 0); break;
      case Op::Bgez: branch_to(static_cast<s32>(rs()) >= 0); break;
      case Op::Bc1t: branch_to(st.fcc); break;
      case Op::Bc1f: branch_to(!st.fcc); break;

      case Op::AddS: wr_fd(fs() + ft()); break;
      case Op::SubS: wr_fd(fs() - ft()); break;
      case Op::MulS: wr_fd(fs() * ft()); break;
      case Op::DivS: wr_fd(ft() == 0.0f ? 0.0f : fs() / ft()); break;
      case Op::AbsS: wr_fd(std::fabs(fs())); break;
      case Op::NegS: wr_fd(-fs()); break;
      case Op::MovS: wr_fd(fs()); break;
      case Op::CvtSW:
        wr_fd(static_cast<float>(static_cast<s32>(st.fpr[inst.rd])));
        break;
      case Op::CvtWS: {
        float v = fs();
        // Saturate out-of-range conversions instead of UB.
        s32 out;
        if (std::isnan(v))
            out = 0;
        else if (v >= 2147483647.0f)
            out = INT32_MAX;
        else if (v <= -2147483648.0f)
            out = INT32_MIN;
        else
            out = static_cast<s32>(v);
        st.fpr[inst.shamt] = static_cast<u32>(out);
        break;
      }
      case Op::CEqS: st.fcc = fs() == ft(); break;
      case Op::CLtS: st.fcc = fs() < ft(); break;
      case Op::CLeS: st.fcc = fs() <= ft(); break;
      case Op::Mtc1: st.fpr[inst.rd] = rt(); break;
      case Op::Mfc1: wr_rt(st.fpr[inst.rd]); break;

      case Op::Syscall:
        doSyscall();
        break;
      case Op::Break:
        halted_ = true;
        break;

      case Op::Invalid:
      case Op::kNumOps:
        cps_fatal("executed invalid instruction 0x%08x at pc 0x%x",
                  inst.raw, state_.pc);
    }

    state_.pc = next;
    rec.nextPc = next;
    rec.halted = halted_;
    ++instCount_;
    ++mix_[info.cls];
    return rec;
}

} // namespace cps
