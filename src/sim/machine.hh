/**
 * @file
 * Machine: one fully wired simulated system — core pipeline, L1 caches,
 * branch predictor, main memory, and (optionally) the CodePack
 * decompressor on the I-miss path. The three baseline machines of the
 * paper's Table 2 are provided as presets.
 */

#ifndef CPS_SIM_MACHINE_HH
#define CPS_SIM_MACHINE_HH

#include <memory>
#include <string>

#include "codepack/compressor.hh"
#include "codepack/timing.hh"
#include "core/executor.hh"
#include "core/trace.hh"
#include "software_fetch.hh"
#include "pipeline/config.hh"
#include "pipeline/inorder.hh"
#include "pipeline/ooo.hh"
#include "progen/progen.hh"

namespace cps
{

/** Which code model the machine runs (paper Table 5 columns). */
enum class CodeModel
{
    Native,            ///< uncompressed program, critical-word-first fills
    CodePack,          ///< baseline decompressor (last-index cache, 1/cyc)
    CodePackOptimized, ///< 64x4 index cache + 2 decoders (paper §5.3)
    CodePackCustom,    ///< caller-supplied DecompressorConfig
    CodePackSoftware,  ///< trap-based software handler (paper §6)
    NativePrefetch,    ///< native code + next-line prefetcher (ablation)
};

/** Complete machine configuration. */
struct MachineConfig
{
    std::string name = "4-issue";
    PipelineConfig pipeline;
    CacheConfig icache{16 * 1024, 32, 2};
    CacheConfig dcache{16 * 1024, 16, 2};
    MemTimingConfig mem;
    CodeModel codeModel = CodeModel::Native;
    codepack::DecompressorConfig decomp; ///< used for CodePackCustom
    SoftwareDecompressConfig software;   ///< used for CodePackSoftware

    /** Returns a copy configured for @p model. */
    MachineConfig
    withCodeModel(CodeModel model) const
    {
        MachineConfig out = *this;
        out.codeModel = model;
        return out;
    }
};

/** The paper's 1-issue embedded machine (Table 2). */
MachineConfig baseline1Issue();
/** The paper's 4-issue out-of-order machine (Table 2). */
MachineConfig baseline4Issue();
/** The paper's 8-issue high-end machine (Table 2). */
MachineConfig baseline8Issue();

/**
 * Functional steps a pipeline under @p cfg may consume beyond its
 * retired-instruction budget (the OoO front end fetches ahead of
 * commit). A recorded trace replayed for max_insns must additionally
 * cover this many entries unless it ends with the program's exit.
 */
inline u64
replayLookahead(const MachineConfig &cfg)
{
    return cfg.pipeline.inOrder ? 0 : cfg.pipeline.ruuSize + 1;
}

/**
 * One window of a chunk-parallel run: the machine replays the recorded
 * trace from entry @c skipEntries (cold caches and predictors), retires
 * @c warmupInsns instructions with statistics gated off, then retires
 * up to @c bodyInsns counted instructions.
 */
struct ChunkWindow
{
    u64 skipEntries = 0; ///< trace entries to skip before starting
    u64 warmupInsns = 0; ///< retirements that only warm machine state
    u64 bodyInsns = 0;   ///< retirements that count toward the result
};

/** What one chunk window contributes to a stitched run. */
struct ChunkRunResult
{
    /** Body-only contribution: instructions/cycles are the post-gate
     *  deltas; status/programExited describe the whole window. */
    RunResult body;
    /** Machine StatSet at the warm-up gate (sorted name/value pairs);
     *  the chunk's stat contribution is finalStats minus this. */
    std::vector<std::pair<std::string, u64>> statsAtGate;
};

/**
 * One program + one machine, ready to run.
 *
 * For the CodePack code models the caller provides the compressed image
 * (compress once, simulate many machines).
 */
class Machine
{
  public:
    /**
     * @param prog the native program (must outlive the machine)
     * @param cfg machine configuration
     * @param img compressed image; required for CodePack code models
     * @param trace pre-recorded instruction stream of @p prog; when
     *        given, run() replays it instead of re-executing the
     *        functional core (must outlive the machine and cover the
     *        run length — see TraceBuffer::covers / replayLookahead)
     */
    Machine(const Program &prog, const MachineConfig &cfg,
            const codepack::CompressedImage *img = nullptr,
            const TraceBuffer *trace = nullptr);

    /** Runs until @p max_insns commit or the program exits. */
    RunResult run(u64 max_insns);

    /**
     * Runs one chunk window of a chunk-parallel run (requires a
     * machine constructed with a trace). Replay starts at
     * @p w.skipEntries; the first w.warmupInsns retirements warm the
     * machine with stats gated off, and the returned contribution is
     * the delta from the gate to the end of the window. A fresh
     * machine per window, please — state carries across run() calls.
     */
    ChunkRunResult runChunk(const ChunkWindow &w);

    /** True when run() replays a recorded trace instead of executing. */
    bool replaying() const { return replayTrace_ != nullptr; }

    StatSet &stats() { return stats_; }
    const MachineConfig &config() const { return cfg_; }

    /** misses / line accesses, SimpleScalar-style. */
    double
    icacheMissRate() const
    {
        return stats_.ratio("icache.misses", "icache.line_accesses");
    }

    /** Index-cache hit ratio observed during L1 misses. */
    double
    indexCacheMissRate() const
    {
        u64 lookups = stats_.value("decomp.index_lookups");
        if (lookups == 0)
            return 0.0;
        u64 hits = stats_.value("decomp.index_hits");
        return static_cast<double>(lookups - hits) /
               static_cast<double>(lookups);
    }

    Executor &executor() { return exec_; }
    MainMemory &memory() { return mem_; }

    /** The decompressor model, when the machine runs compressed code. */
    codepack::DecompressorModel *decompressor();

  private:
    MachineConfig cfg_;
    const Program &prog_;
    StatSet stats_;
    MainMemory mem_;
    DecodedText text_;
    Executor exec_;
    const TraceBuffer *replayTrace_ = nullptr;
    std::unique_ptr<TraceSource> source_;
    std::unique_ptr<CachedFetchPath> fetch_;
    DataPath data_;
    std::unique_ptr<InOrderPipeline> inorder_;
    std::unique_ptr<OoOPipeline> ooo_;
};

} // namespace cps

#endif // CPS_SIM_MACHINE_HH
