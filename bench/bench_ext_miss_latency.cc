/**
 * @file
 * Extension experiment: the steady-state version of Figure 2 — the
 * average critical-word latency of an I-cache miss under each code
 * model on the 4-issue baseline. This is the per-miss cost the paper's
 * Figure 2 illustrates for a single event, measured over every miss of
 * a full run (output-buffer hits and index-cache hits included).
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/suite.hh"

using namespace cps;

namespace
{

std::string
avgMissLatency(const BenchProgram &bench, const MachineConfig &cfg,
               u64 insns)
{
    Machine machine(bench.program, cfg,
                    cfg.codeModel == CodeModel::Native ? nullptr
                                                       : &bench.image);
    machine.run(insns);
    u64 misses = machine.stats().value("icache.misses");
    if (misses == 0)
        return "-";
    double avg = static_cast<double>(
                     machine.stats().value("icache.miss_latency_total")) /
                 static_cast<double>(misses);
    return TextTable::fmt(avg, 1);
}

} // namespace

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();

    TextTable t;
    t.setTitle("Extension: average critical-word I-miss latency in "
               "cycles (4-issue; Figure 2 over a full run)");
    t.addHeader({"Bench", "Native", "CodePack", "Optimized",
                 "Software (8 cyc/insn)"});

    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        MachineConfig sw =
            baseline4Issue().withCodeModel(CodeModel::CodePackSoftware);
        t.addRow({name,
                  avgMissLatency(bench, baseline4Issue(), insns),
                  avgMissLatency(bench,
                                 baseline4Issue().withCodeModel(
                                     CodeModel::CodePack),
                                 insns),
                  avgMissLatency(bench,
                                 baseline4Issue().withCodeModel(
                                     CodeModel::CodePackOptimized),
                                 insns),
                  avgMissLatency(bench, sw, insns)});
    }
    t.print();

    std::printf("\n(Single-event anchors from Figure 2: native 10, "
                "baseline CodePack 25 on an\nindex miss; averages fall "
                "below the anchors because output-buffer hits and\n"
                "index-cache hits are cheap.)\n");
    return 0;
}
