/**
 * @file
 * Tests for the table formatter used by every benchmark binary.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace cps
{
namespace
{

TEST(Table, GroupedInsertsThousandsSeparators)
{
    EXPECT_EQ(TextTable::grouped(0), "0");
    EXPECT_EQ(TextTable::grouped(999), "999");
    EXPECT_EQ(TextTable::grouped(1000), "1,000");
    EXPECT_EQ(TextTable::grouped(1083808), "1,083,808");
    EXPECT_EQ(TextTable::grouped(1234567890ull), "1,234,567,890");
}

TEST(Table, PctFormats)
{
    EXPECT_EQ(TextTable::pct(0.605), "60.5%");
    EXPECT_EQ(TextTable::pct(0.0), "0.0%");
    EXPECT_EQ(TextTable::pct(1.0), "100.0%");
    EXPECT_EQ(TextTable::pct(0.12345, 2), "12.35%");
}

TEST(Table, FmtDecimals)
{
    EXPECT_EQ(TextTable::fmt(1.2345), "1.23");
    EXPECT_EQ(TextTable::fmt(1.2345, 3), "1.234"); // banker's-free trunc
    EXPECT_EQ(TextTable::fmt(2.0, 1), "2.0");
}

TEST(Table, RenderAlignsColumns)
{
    TextTable t;
    t.addHeader({"Bench", "Value"});
    t.addRow({"cc1", "1"});
    t.addRow({"longername", "22222"});
    std::string out = t.render();
    // Every data line has the same length.
    size_t first_nl = out.find('\n');
    ASSERT_NE(first_nl, std::string::npos);
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < out.size()) {
        size_t nl = out.find('\n', pos);
        lines.push_back(out.substr(pos, nl - pos));
        pos = nl + 1;
    }
    // header, rule, row, row
    ASSERT_GE(lines.size(), 4u);
    EXPECT_EQ(lines[0].size(), lines[2].size());
    EXPECT_EQ(lines[2].size(), lines[3].size());
}

TEST(Table, TitleAppearsFirst)
{
    TextTable t;
    t.setTitle("Table 3");
    t.addRow({"a", "b"});
    std::string out = t.render();
    EXPECT_EQ(out.rfind("Table 3", 0), 0u);
}

TEST(Table, RaggedRowsPrintEmptyCells)
{
    TextTable t;
    t.addHeader({"a", "b", "c"});
    t.addRow({"x"});
    std::string out = t.render();
    EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(Table, RuleSpansWidth)
{
    TextTable t;
    t.addRow({"aaaa", "bbbb"});
    t.addRule();
    t.addRow({"c", "d"});
    std::string out = t.render();
    EXPECT_NE(out.find("----"), std::string::npos);
}


TEST(Table, CsvRendering)
{
    TextTable t;
    t.setTitle("Title");
    t.addHeader({"a", "b"});
    t.addRow({"x", "1,234"});
    t.addRule();
    t.addRow({"y", "2"});
    std::string csv = t.renderCsv();
    EXPECT_EQ(csv, "# Title\na,b\nx,\"1,234\"\ny,2\n");
}

TEST(Table, CsvSkipsRules)
{
    TextTable t;
    t.addRow({"a"});
    t.addRule();
    std::string csv = t.renderCsv();
    EXPECT_EQ(csv.find('-'), std::string::npos);
}

} // namespace
} // namespace cps
