/**
 * @file
 * Experiment harness shared by every benchmark binary: generates and
 * compresses each synthetic benchmark once per process, runs machines,
 * and computes the speedup numbers the paper's tables report.
 */

#ifndef CPS_HARNESS_SUITE_HH
#define CPS_HARNESS_SUITE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace cps
{

/** A generated benchmark with its compressed image. */
struct BenchProgram
{
    const BenchmarkProfile *profile = nullptr;
    Program program;
    codepack::CompressedImage image;
};

/** Process-wide cache of generated benchmarks. */
class Suite
{
  public:
    static Suite &instance();

    /** The six paper benchmarks, in Table 1 order. */
    const std::vector<std::string> &names() const { return names_; }

    /** Generates (once) and returns a benchmark by name. */
    const BenchProgram &get(const std::string &name);

    /**
     * Dynamic instructions per timing run. Defaults to 1,000,000;
     * override with the CPS_INSNS environment variable. (The paper ran
     * >1e9 instructions; our synthetic workloads reach steady state
     * within well under 1e6 — see DESIGN.md "Substitutions".)
     */
    static u64 runInsns();

  private:
    Suite();

    std::vector<std::string> names_;
    std::map<std::string, std::unique_ptr<BenchProgram>> cache_;
};

/** Everything a table needs from one timed run. */
struct RunOutcome
{
    RunResult result;
    double icacheMissRate = 0.0;
    double indexCacheMissRate = 0.0;
    u64 icacheMisses = 0;
    u64 bufferHits = 0;
};

/** Builds a machine for @p bench under @p cfg and runs it. */
RunOutcome runMachine(const BenchProgram &bench, const MachineConfig &cfg,
                      u64 max_insns);

/** Convenience: cycles(native) / cycles(model) on identical inputs. */
inline double
speedup(const RunOutcome &native, const RunOutcome &other)
{
    if (other.result.cycles == 0)
        return 0.0;
    return static_cast<double>(native.result.cycles) /
           static_cast<double>(other.result.cycles);
}

} // namespace cps

#endif // CPS_HARNESS_SUITE_HH
