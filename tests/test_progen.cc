/**
 * @file
 * Synthetic-benchmark generator tests: all six profiles assemble, run,
 * compress losslessly, and land in their calibrated characteristic
 * ranges.
 */

#include <gtest/gtest.h>

#include "codepack/decompressor.hh"
#include "progen/progen.hh"
#include "sim/machine.hh"

namespace cps
{
namespace
{

TEST(Progen, SixStandardProfiles)
{
    const auto &profiles = standardProfiles();
    ASSERT_EQ(profiles.size(), 6u);
    EXPECT_EQ(profiles[0].name, "cc1");
    EXPECT_EQ(profiles[1].name, "go");
    EXPECT_EQ(profiles[2].name, "mpeg2enc");
    EXPECT_EQ(profiles[3].name, "pegwit");
    EXPECT_EQ(profiles[4].name, "perl");
    EXPECT_EQ(profiles[5].name, "vortex");
}

TEST(Progen, FindProfileByName)
{
    EXPECT_EQ(findProfile("go").name, "go");
}

TEST(Progen, GenerationIsDeterministic)
{
    const BenchmarkProfile &p = findProfile("pegwit");
    EXPECT_EQ(generateSource(p), generateSource(p));
}

TEST(Progen, SeedChangesTheProgram)
{
    BenchmarkProfile p = findProfile("pegwit");
    std::string a = generateSource(p);
    p.seed ^= 0x1234;
    EXPECT_NE(a, generateSource(p));
}

class ProfileTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(ProfileTest, AssemblesCleanly)
{
    Program prog = generateProgram(findProfile(GetParam()));
    EXPECT_GT(prog.textWords(), 1000u);
    EXPECT_EQ(prog.entry, prog.symbol("main"));
}

TEST_P(ProfileTest, RunsWithoutFaulting)
{
    Program prog = generateProgram(findProfile(GetParam()));
    MainMemory mem;
    mem.loadSegment(prog.text);
    mem.loadSegment(prog.data);
    DecodedText text(prog);
    Executor exec(text, mem);
    exec.reset(prog);
    for (int i = 0; i < 50000 && !exec.halted(); ++i)
        exec.step();
    EXPECT_EQ(exec.instCount(), 50000u); // long-running by design
}

TEST_P(ProfileTest, CompressesLosslessly)
{
    Program prog = generateProgram(findProfile(GetParam()));
    codepack::CompressedImage img = codepack::compress(prog);
    codepack::Decompressor d(img);
    std::vector<u32> words = d.decompressAll();
    ASSERT_EQ(words.size(), prog.textWords());
    for (size_t i = 0; i < words.size(); ++i)
        ASSERT_EQ(words[i], prog.word(i)) << "insn " << i;
}

TEST_P(ProfileTest, CompressionRatioInPaperRange)
{
    Program prog = generateProgram(findProfile(GetParam()));
    codepack::CompressedImage img = codepack::compress(prog);
    // The paper's Table 3 spans 54.9%..63.1%; allow slack around it.
    EXPECT_GT(img.compressionRatio(), 0.45);
    EXPECT_LT(img.compressionRatio(), 0.72);
}

TEST_P(ProfileTest, RawBitsAreASurprisinglyLargeShare)
{
    // Table 4: 14-21% of the compressed region is raw bits; with tags,
    // 19-25% "is not compressed". Check we reproduce that qualitative
    // observation (generous bounds).
    Program prog = generateProgram(findProfile(GetParam()));
    codepack::CompressedImage img = codepack::compress(prog);
    double raw_share =
        static_cast<double>(img.comp.rawBits + img.comp.rawTagBits) /
        static_cast<double>(img.comp.totalBits());
    EXPECT_GT(raw_share, 0.05);
    EXPECT_LT(raw_share, 0.45);
}

TEST_P(ProfileTest, IndexTableShareNearFivePercent)
{
    // Table 4: the index table is 5.0-5.6% of the compressed region.
    Program prog = generateProgram(findProfile(GetParam()));
    codepack::CompressedImage img = codepack::compress(prog);
    double share = static_cast<double>(img.comp.indexTableBits) /
                   static_cast<double>(img.comp.totalBits());
    EXPECT_GT(share, 0.03);
    EXPECT_LT(share, 0.08);
}


TEST_P(ProfileTest, DynamicMixLooksLikeCompiledCode)
{
    // Compiled integer code runs roughly 15-30% memory ops and
    // 10-25% control transfers; the generator should land in a broadly
    // realistic band for every profile.
    Program prog = generateProgram(findProfile(GetParam()));
    MainMemory mem;
    mem.loadSegment(prog.text);
    mem.loadSegment(prog.data);
    DecodedText text(prog);
    Executor exec(text, mem);
    exec.reset(prog);
    for (int i = 0; i < 100000 && !exec.halted(); ++i)
        exec.step();
    const Executor::MixStats &mix = exec.mix();
    double mem_share = static_cast<double>(mix.memOps()) /
                       static_cast<double>(mix.total());
    double ctl_share = static_cast<double>(mix.controlOps()) /
                       static_cast<double>(mix.total());
    EXPECT_GT(mem_share, 0.05) << GetParam();
    EXPECT_LT(mem_share, 0.45) << GetParam();
    EXPECT_GT(ctl_share, 0.04) << GetParam();
    EXPECT_LT(ctl_share, 0.35) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ProfileTest,
                         ::testing::Values("cc1", "go", "mpeg2enc",
                                           "pegwit", "perl", "vortex"));

TEST(Progen, TextSizesTrackThePaper)
{
    // Table 3 original sizes (bytes); ours should be within ~25%.
    struct Expect { const char *name; u32 bytes; };
    const Expect table[] = {
        {"cc1", 1083168}, {"go", 310576}, {"mpeg2enc", 118416},
        {"pegwit", 88560}, {"perl", 267568}, {"vortex", 495792},
    };
    for (const Expect &e : table) {
        Program prog = generateProgram(findProfile(e.name));
        double ratio = static_cast<double>(prog.text.bytes.size()) /
                       static_cast<double>(e.bytes);
        EXPECT_GT(ratio, 0.70) << e.name;
        EXPECT_LT(ratio, 1.40) << e.name;
    }
}

TEST(Progen, LoopBenchmarksHaveTinyMissRates)
{
    // mpeg2enc and pegwit are the paper's loop-dominated benchmarks
    // (Table 1: ~0% I-miss at 16KB).
    for (const char *name : {"mpeg2enc", "pegwit"}) {
        Program prog = generateProgram(findProfile(name));
        Machine m(prog, baseline4Issue());
        m.run(300000);
        EXPECT_LT(m.icacheMissRate(), 0.01) << name;
    }
}

TEST(Progen, ControlBenchmarksMissSubstantially)
{
    for (const char *name : {"cc1", "go"}) {
        Program prog = generateProgram(findProfile(name));
        Machine m(prog, baseline4Issue());
        m.run(300000);
        EXPECT_GT(m.icacheMissRate(), 0.02) << name;
        EXPECT_LT(m.icacheMissRate(), 0.15) << name;
    }
}

TEST(Progen, HotFuncsMustBePowerOfTwo)
{
    BenchmarkProfile p = findProfile("go");
    p.numFuncs = 10;
    p.hotFuncs = 8;
    p.numSubs = 4;
    // Power-of-two hotFuncs assemble and run fine.
    Program prog = generateProgram(p);
    EXPECT_GT(prog.textWords(), 100u);
}

} // namespace
} // namespace cps
