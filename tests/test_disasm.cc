/**
 * @file
 * Disassembler output checks.
 */

#include <gtest/gtest.h>

#include "isa/isa.hh"

namespace cps
{
namespace
{

Inst
make(Op op)
{
    Inst i;
    i.op = op;
    return i;
}

TEST(Disasm, Nop)
{
    EXPECT_EQ(disassemble(kNopWord), "nop");
}

TEST(Disasm, Rrr)
{
    Inst i = make(Op::Addu);
    i.rd = 2;
    i.rs = 4;
    i.rt = 5;
    i.raw = encode(i);
    EXPECT_EQ(disassemble(i), "addu $v0, $a0, $a1");
}

TEST(Disasm, ShiftShowsAmount)
{
    Inst i = make(Op::Sll);
    i.rd = 8;
    i.rt = 9;
    i.shamt = 4;
    i.raw = encode(i);
    EXPECT_EQ(disassemble(i), "sll $t0, $t1, 4");
}

TEST(Disasm, ImmediateSigned)
{
    Inst i = make(Op::Addiu);
    i.rt = 8;
    i.rs = 29;
    i.imm = static_cast<u16>(-32);
    i.raw = encode(i);
    EXPECT_EQ(disassemble(i), "addiu $t0, $sp, -32");
}

TEST(Disasm, LogicalImmediateHex)
{
    Inst i = make(Op::Andi);
    i.rt = 8;
    i.rs = 8;
    i.imm = 0xff;
    i.raw = encode(i);
    EXPECT_EQ(disassemble(i), "andi $t0, $t0, 0xff");
}

TEST(Disasm, MemoryOperand)
{
    Inst i = make(Op::Lw);
    i.rt = 31;
    i.rs = 29;
    i.imm = 28;
    i.raw = encode(i);
    EXPECT_EQ(disassemble(i), "lw $ra, 28($sp)");
}

TEST(Disasm, BranchTargetUsesPc)
{
    Inst i = make(Op::Beq);
    i.rs = 1;
    i.rt = 0;
    i.imm = 3; // pc + 4 + 12
    i.raw = encode(i);
    EXPECT_EQ(disassemble(i, 0x1000), "beq $at, $zero, 0x1010");
}

TEST(Disasm, BackwardBranch)
{
    Inst i = make(Op::Bne);
    i.rs = 8;
    i.rt = 9;
    i.imm = static_cast<u16>(-2); // pc + 4 - 8
    i.raw = encode(i);
    EXPECT_EQ(disassemble(i, 0x1000), "bne $t0, $t1, 0xffc");
}

TEST(Disasm, JumpTarget)
{
    Inst i = make(Op::Jal);
    i.target = 0x10000 >> 2;
    i.raw = encode(i);
    EXPECT_EQ(disassemble(i), "jal 0x10000");
}

TEST(Disasm, FpThreeOperand)
{
    Inst i = make(Op::MulS);
    i.shamt = 2;
    i.rd = 4;
    i.rt = 6;
    i.raw = encode(i);
    EXPECT_EQ(disassemble(i), "mul.s $f2, $f4, $f6");
}

TEST(Disasm, Syscall)
{
    Inst i = make(Op::Syscall);
    i.raw = encode(i);
    EXPECT_EQ(disassemble(i), "syscall");
}

TEST(Disasm, InvalidShowsRawWord)
{
    std::string out = disassemble(0xfc001234u);
    EXPECT_NE(out.find("0xfc001234"), std::string::npos);
}

TEST(Disasm, WordOverloadDecodesFirst)
{
    Inst i = make(Op::Ori);
    i.rt = 2;
    i.rs = 0;
    i.imm = 7;
    EXPECT_EQ(disassemble(encode(i)), "ori $v0, $zero, 0x7");
}

} // namespace
} // namespace cps
