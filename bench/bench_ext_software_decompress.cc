/**
 * @file
 * Extension experiment (paper §6 future work): completely
 * software-managed decompression. An I-cache miss traps to a handler on
 * the core that loads the index, DMAs the compressed block, decodes it
 * in software and returns. How attractive is that for "resource limited
 * computers", and how fast must the handler be to compete?
 *
 * Sweeps the handler's per-instruction decode cost on the 1-issue
 * embedded machine (speedup over native code); hardware baseline and
 * optimized decompressors shown for reference.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    TextTable t;
    t.setTitle("Extension: software-managed decompression "
               "(speedup over native, 1-issue embedded machine)");
    t.addHeader({"Bench", "HW base", "HW opt", "SW 4 cyc/insn",
                 "SW 8 cyc/insn", "SW 16 cyc/insn"});

    harness::Matrix m;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        m.add(bench, baseline1Issue(), insns);
        m.add(bench, baseline1Issue().withCodeModel(CodeModel::CodePack),
              insns);
        m.add(bench,
              baseline1Issue().withCodeModel(CodeModel::CodePackOptimized),
              insns);
        for (Cycle per_insn : {4u, 8u, 16u}) {
            MachineConfig cfg = baseline1Issue().withCodeModel(
                CodeModel::CodePackSoftware);
            cfg.software.cyclesPerInsn = per_insn;
            m.add(bench, cfg, insns);
        }
    }
    m.run();

    auto fmtSpd = [](const RunOutcome &n, const RunOutcome &o) {
        return TextTable::fmt(speedup(n, o), 3);
    };
    for (const std::string &name : suite.names()) {
        harness::CellOutcome native = m.nextCell();
        harness::CellOutcome hw_base = m.nextCell();
        harness::CellOutcome hw_opt = m.nextCell();
        std::vector<std::string> row{
            name, harness::fmtCells(native, hw_base, fmtSpd),
            harness::fmtCells(native, hw_opt, fmtSpd)};
        for (size_t i = 0; i < 3; ++i)
            row.push_back(harness::fmtCells(native, m.nextCell(), fmtSpd));
        t.addRow(row);
    }
    t.print();

    std::printf("\nReading: software decompression is viable exactly "
                "where the paper\nsuggests (low-miss-rate embedded "
                "codes); on the miss-heavy benchmarks the\nhandler "
                "overhead multiplies every miss.\n");
    return m.exitSummary();
}
