/**
 * @file
 * Extension experiment: host-side simulator performance. Unlike every
 * other bench, the numbers here are about the *simulator*, not the
 * simulated machine — how fast the trusted LUT decoder chews through
 * compressed blocks compared to the checked bit-serial reference, how
 * many instructions per second the 4-issue model simulates (driving the
 * functional core live vs. replaying the recorded trace), the
 * wall-clock of a full experiment-matrix regeneration serial vs.
 * parallel and live vs. replay (the `runMatrix` engine, worker count
 * from CPS_THREADS), and the chunk-parallel single-run engine's
 * thread scaling plus its speculative-mode accuracy versus warm-up
 * length.
 *
 * Besides the human-readable table the bench writes BENCH_simperf.json
 * into the working directory so later changes can track the host-perf
 * trajectory. Wall-clock numbers are machine-dependent by nature; the
 * JSON records the worker count so readers can normalize.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "codepack/block_fetcher.hh"
#include "codepack/decompressor.hh"
#include "common/artifact_cache.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "common/threadpool.hh"
#include "harness/chunked.hh"
#include "harness/engine.hh"

using namespace cps;

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * BENCH_simperf.json schema version, bumped whenever a key is added,
 * removed, or changes meaning. tests/check_simperf_schema.py pins the
 * emitted document against this number and its required keys.
 * Schema 8: bench_ext_soft_errors may merge an optional "softerr"
 * section (coverage, silent-rate, recovery-latency, and storage-cost
 * aggregates of the soft-error campaigns).
 */
constexpr int kSchema = 8;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Blocks decoded per second through @p decode: best of three ~0.2 s
 * timing windows (the best window is the least disturbed by scheduler
 * noise — the usual convention for wall-clock microbenchmarks).
 */
template <typename Fn>
double
blocksPerSecond(u32 num_blocks, Fn &&decode)
{
    // Warm up (and fault in the LUT / stream pages) first.
    for (u32 b = 0; b < num_blocks; ++b)
        decode(b);
    double best = 0;
    for (int rep = 0; rep < 5; ++rep) {
        u64 decoded = 0;
        auto start = Clock::now();
        double elapsed = 0;
        do {
            for (u32 b = 0; b < num_blocks; ++b)
                decode(b);
            decoded += num_blocks;
            elapsed = secondsSince(start);
        } while (elapsed < 0.2);
        best = std::max(best, static_cast<double>(decoded) / elapsed);
    }
    return best;
}

/**
 * The full-suite speedup matrix used for the wall-clock comparison:
 * both pipeline models x all four code models, the shape of the
 * paper's multi-configuration tables.
 */
std::vector<harness::RunRequest>
matrixRequests(Suite &suite, u64 insns)
{
    std::vector<harness::RunRequest> reqs;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        for (const MachineConfig &base :
             {baseline1Issue(), baseline4Issue()}) {
            for (CodeModel model :
                 {CodeModel::Native, CodeModel::CodePack,
                  CodeModel::CodePackOptimized,
                  CodeModel::CodePackSoftware}) {
                reqs.push_back(
                    {&bench, base.withCodeModel(model), insns});
            }
        }
    }
    return reqs;
}

std::string
grouped(double v)
{
    return TextTable::grouped(static_cast<u64>(v));
}

} // namespace

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();

    // --- 0. Pregeneration wall-clock: cold vs warm artifact cache -----
    // A private scratch cache (not the process-wide one) so "cold" is
    // genuinely cold and the measurement does not disturb — or get
    // helped by — any .cps-cache a previous run left behind.
    const std::string scratch_cache = "simperf_pregen_cache";
    std::filesystem::remove_all(scratch_cache);
    ArtifactCache pregen_cache(scratch_cache, true);
    auto timePregen = [&] {
        auto start = Clock::now();
        for (const std::string &name : suite.names()) {
            std::unique_ptr<BenchProgram> bench =
                buildBenchProgram(name, pregen_cache);
            asm volatile("" : : "r"(bench.get()) : "memory");
        }
        return secondsSince(start);
    };
    double pregen_cold_s = timePregen(); // computes + stores
    double pregen_warm_s = timePregen(); // loads + verifies
    std::filesystem::remove_all(scratch_cache);
    double pregen_speedup =
        pregen_cold_s / (pregen_warm_s > 0 ? pregen_warm_s : 1.0);

    suite.pregenerate();

    // --- 1. Trusted LUT decode vs checked bit-serial reference --------
    const BenchProgram *largest = nullptr;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        if (!largest ||
            bench.image.bytes.size() > largest->image.bytes.size())
            largest = &bench;
    }
    u32 blocks = largest->image.numBlocks();

    // --- 1b. Parallel block compression: serial vs CPS_THREADS workers
    std::vector<u32> comp_words;
    comp_words.reserve(largest->program.textWords());
    for (size_t i = 0; i < largest->program.textWords(); ++i)
        comp_words.push_back(largest->program.word(i));
    auto timeCompress = [&](unsigned threads, bool simd) {
        codepack::CompressorConfig cfg;
        cfg.threads = threads;
        cfg.simd = simd;
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            auto start = Clock::now();
            codepack::CompressedImage img = codepack::compressWords(
                comp_words, largest->program.text.base, cfg);
            best = std::min(best, secondsSince(start));
            asm volatile("" : : "r"(img.bytes.data()) : "memory");
        }
        return best;
    };
    unsigned workers = defaultThreadCount();
    double compress_serial_s = timeCompress(1, true);
    double compress_parallel_s = timeCompress(workers, true);
    double compress_scalar_s = timeCompress(1, false);
    double compress_speedup =
        compress_serial_s /
        (compress_parallel_s > 0 ? compress_parallel_s : 1.0);
    double simd_speedup =
        compress_scalar_s /
        (compress_serial_s > 0 ? compress_serial_s : 1.0);

    // --- 1c. The decode kernel ladder, per block -----------------------
    // Single-block latency for each rung, plus the batched entry point
    // (decompressBlocks interleaves up to four independent block
    // streams per loop) — the batched ns/block is the headline number.
    auto kernelBps = [&](codepack::DecodeKernel k) {
        codepack::Decompressor d(largest->image, k);
        return blocksPerSecond(blocks, [&](u32 b) {
            codepack::DecodedBlock blk = d.decompressFlatBlock(b);
            asm volatile("" : : "r"(blk.words[0]) : "memory");
        });
    };
    double checked_bps = kernelBps(codepack::DecodeKernel::Checked);
    double lut_bps = kernelBps(codepack::DecodeKernel::Lut);
    double lut2_bps = kernelBps(codepack::DecodeKernel::Lut2);
    codepack::Decompressor batch_decomp(largest->image,
                                        codepack::DecodeKernel::Lut2);
    std::vector<codepack::DecodedBlock> batch_out(blocks);
    auto batchedBps = [&] {
        // One decompressBlocks sweep per window pass; normalize the
        // best-window convention by timing whole sweeps directly.
        for (int warm = 0; warm < 2; ++warm)
            batch_decomp.decompressBlocks(0, blocks, batch_out.data());
        double best = 0;
        for (int rep = 0; rep < 5; ++rep) {
            u64 decoded = 0;
            auto start = Clock::now();
            double elapsed = 0;
            do {
                batch_decomp.decompressBlocks(0, blocks,
                                              batch_out.data());
                asm volatile("" : : "r"(batch_out.data()) : "memory");
                decoded += blocks;
                elapsed = secondsSince(start);
            } while (elapsed < 0.2);
            best =
                std::max(best, static_cast<double>(decoded) / elapsed);
        }
        return best;
    };
    double batched_bps = batchedBps();
    double decode_speedup =
        batched_bps / (checked_bps > 0 ? checked_bps : 1.0);
    auto nsPerBlock = [](double bps) {
        return bps > 0 ? 1e9 / bps : 0.0;
    };

    // --- 1d. Host block cache: direct-mapped memo vs scored prefetch --
    // Warm-refill throughput of the three host caches on a sequential
    // sweep over every block of the largest image. The image holds far
    // more blocks than the 64-slot cache, so every sweep is a full
    // refill — the worst case the fetcher's speculative decode overlap
    // is meant to win.
    const unsigned hostpf_slots = 64;
    codepack::BlockCache direct_cache(batch_decomp, hostpf_slots);
    codepack::BlockFetcher::Options lru_opts;
    lru_opts.slots = hostpf_slots;
    lru_opts.prefetch = false;
    codepack::BlockFetcher lru_fetch(batch_decomp, lru_opts);
    codepack::BlockFetcher::Options pf_opts;
    pf_opts.slots = hostpf_slots;
    codepack::BlockFetcher pf_fetch(batch_decomp, pf_opts);
    auto directSweep = [&](u32 b) {
        const codepack::DecodedBlock &blk = direct_cache.get(
            b / codepack::kBlocksPerGroup, b % codepack::kBlocksPerGroup);
        asm volatile("" : : "r"(blk.words[0]) : "memory");
    };
    auto lruSweep = [&](u32 b) {
        const codepack::DecodedBlock &blk = lru_fetch.getFlat(b);
        asm volatile("" : : "r"(blk.words[0]) : "memory");
    };
    auto pfSweep = [&](u32 b) {
        const codepack::DecodedBlock &blk = pf_fetch.getFlat(b);
        asm volatile("" : : "r"(blk.words[0]) : "memory");
    };
    // One ~0.2 s timing window; the three caches take their windows
    // interleaved, rep by rep, so slow drift (turbo decay, a noisy
    // neighbor) hits all of them alike instead of biasing the ratio.
    auto window = [&](auto &&sweep) {
        u64 decoded = 0;
        auto start = Clock::now();
        double elapsed = 0;
        do {
            for (u32 b = 0; b < blocks; ++b)
                sweep(b);
            decoded += blocks;
            elapsed = secondsSince(start);
        } while (elapsed < 0.2);
        return static_cast<double>(decoded) / elapsed;
    };
    for (u32 b = 0; b < blocks; ++b) { // warm all three
        directSweep(b);
        lruSweep(b);
        pfSweep(b);
    }
    double direct_bps = 0, lru_bps = 0, fetcher_bps = 0;
    for (int rep = 0; rep < 5; ++rep) {
        direct_bps = std::max(direct_bps, window(directSweep));
        lru_bps = std::max(lru_bps, window(lruSweep));
        fetcher_bps = std::max(fetcher_bps, window(pfSweep));
    }
    double warm_refill_speedup =
        fetcher_bps / (direct_bps > 0 ? direct_bps : 1.0);
    u64 hostpf_issued = pf_fetch.prefetchIssued();
    u64 hostpf_hits = pf_fetch.prefetchHits();
    double hostpf_hit_rate =
        hostpf_issued == 0 ? 0.0
                           : static_cast<double>(hostpf_hits) /
                                 static_cast<double>(hostpf_issued);

    // --- 2. Simulated instructions per second, live vs replay ---------
    const BenchProgram &go = suite.get("go");
    auto simRate = [&](const MachineConfig &cfg, ReplayMode mode) {
        runMachine(go, cfg, 20000, mode); // warm-up
        double best = 0;
        for (int rep = 0; rep < 3; ++rep) {
            u64 simulated = 0;
            auto start = Clock::now();
            double elapsed = 0;
            do {
                RunOutcome out = runMachine(go, cfg, insns, mode);
                simulated += out.result.instructions;
                elapsed = secondsSince(start);
            } while (elapsed < 0.2);
            best =
                std::max(best, static_cast<double>(simulated) / elapsed);
        }
        return best;
    };
    MachineConfig native_cfg = baseline4Issue();
    MachineConfig cp_cfg =
        baseline4Issue().withCodeModel(CodeModel::CodePackOptimized);
    MachineConfig inorder_cfg = baseline1Issue();
    double native_ips = simRate(native_cfg, ReplayMode::ForceLive);
    double native_replay_ips = simRate(native_cfg, ReplayMode::Auto);
    double cp_ips = simRate(cp_cfg, ReplayMode::ForceLive);
    double cp_replay_ips = simRate(cp_cfg, ReplayMode::Auto);
    double inorder_ips = simRate(inorder_cfg, ReplayMode::ForceLive);
    double inorder_replay_ips = simRate(inorder_cfg, ReplayMode::Auto);

    // --- 3. Full-matrix regeneration: serial vs parallel, live vs
    //        replay. serial/parallel use the default mode (replay when
    //        the trace covers), matching what the table binaries do.
    std::vector<harness::RunRequest> reqs = matrixRequests(suite, insns);
    auto timeMatrix = [&](unsigned threads, ReplayMode mode) {
        for (harness::RunRequest &req : reqs)
            req.mode = mode;
        // Best of two passes: a full matrix takes long enough that one
        // scheduler hiccup would otherwise dominate the comparison.
        double best = 1e300;
        for (int rep = 0; rep < 2; ++rep) {
            auto start = Clock::now();
            std::vector<RunOutcome> out =
                harness::runMatrix(reqs, threads);
            best = std::min(best, secondsSince(start));
            asm volatile("" : : "r"(out.data()) : "memory");
        }
        return best;
    };
    double serial_s = timeMatrix(1, ReplayMode::Auto);
    double parallel_s = timeMatrix(workers, ReplayMode::Auto);
    double matrix_live_s = timeMatrix(workers, ReplayMode::ForceLive);
    double matrix_replay_s = parallel_s;
    double replay_speedup =
        matrix_live_s / (matrix_replay_s > 0 ? matrix_replay_s : 1.0);

    // --- 4. Chunk-parallel single run: throughput and accuracy --------
    // Throughput: the same single run split into a fixed 8-chunk plan
    // (so the plan never changes), speculative warm-up, at 1/2/4/8
    // worker threads; the serial replay rate above is the baseline.
    const u64 chunk_insns = (insns + 7) / 8;
    auto chunkedRate = [&](unsigned threads) {
        harness::ChunkOptions opt;
        opt.chunkInsns = chunk_insns;
        opt.threads = threads;
        harness::runMachineChunked(go, native_cfg, insns, opt); // warm-up
        double best = 0;
        for (int rep = 0; rep < 3; ++rep) {
            u64 simulated = 0;
            auto start = Clock::now();
            double elapsed = 0;
            do {
                RunOutcome out =
                    harness::runMachineChunked(go, native_cfg, insns, opt);
                simulated += out.result.instructions;
                elapsed = secondsSince(start);
            } while (elapsed < 0.2);
            best =
                std::max(best, static_cast<double>(simulated) / elapsed);
        }
        return best;
    };
    const unsigned chunk_threads[] = {1, 2, 4, 8};
    double chunk_ips[4];
    for (size_t i = 0; i < 4; ++i)
        chunk_ips[i] = chunkedRate(chunk_threads[i]);
    double chunk_speedup_8t =
        chunk_ips[3] / (native_replay_ips > 0 ? native_replay_ips : 1.0);

    // Accuracy: speculative boundaries are only warmed W entries deep,
    // so the stitched stats drift from serial; measure the worst IPC
    // and I-miss-rate deviation across all benchmarks and both
    // pipelines as W grows.
    struct ChunkAccuracy
    {
        u64 warmup;
        double maxIpcDelta = 0;      // relative |ΔIPC| / IPC_serial
        double maxMissRateDelta = 0; // absolute |Δ miss rate|
    };
    std::vector<ChunkAccuracy> accuracy = {{1024}, {4096}, {16384}};
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        for (const MachineConfig &base :
             {baseline1Issue(),
              baseline4Issue().withCodeModel(CodeModel::CodePack)}) {
            RunOutcome serial = runMachineSerial(bench, base, insns);
            double serial_ipc =
                static_cast<double>(serial.result.instructions) /
                static_cast<double>(serial.result.cycles);
            for (ChunkAccuracy &acc : accuracy) {
                harness::ChunkOptions opt;
                opt.chunkInsns = chunk_insns;
                opt.warmupInsns = acc.warmup;
                opt.threads = workers;
                RunOutcome chunked =
                    harness::runMachineChunked(bench, base, insns, opt);
                double ipc =
                    static_cast<double>(chunked.result.instructions) /
                    static_cast<double>(chunked.result.cycles);
                acc.maxIpcDelta =
                    std::max(acc.maxIpcDelta,
                             std::abs(ipc - serial_ipc) / serial_ipc);
                acc.maxMissRateDelta = std::max(
                    acc.maxMissRateDelta,
                    std::abs(chunked.icacheMissRate -
                             serial.icacheMissRate));
            }
        }
    }

    TextTable t;
    t.setTitle("Extension: host simulator performance "
               "(simulator wall-clock, not simulated cycles)");
    t.addHeader({"Metric", "Value"});
    t.addRow({"pregeneration, cold cache",
              strfmt("%.3f s (%zu benchmarks)", pregen_cold_s,
                     suite.names().size())});
    t.addRow({"pregeneration, warm cache",
              strfmt("%.3f s (%.1fx)", pregen_warm_s, pregen_speedup)});
    t.addRow({"CodePack compress, serial",
              strfmt("%.4f s (largest benchmark)", compress_serial_s)});
    t.addRow({strfmt("CodePack compress, %u workers", workers),
              strfmt("%.4f s (%.2fx)", compress_parallel_s,
                     compress_speedup)});
    t.addRow({strfmt("CodePack compress, scalar loops (no %s)",
                     simd::kBackend),
              strfmt("%.4f s (simd %.2fx)", compress_scalar_s,
                     simd_speedup)});
    t.addRow({"decode, checked bit-serial",
              strfmt("%s blocks/s (%.1f ns/block)",
                     grouped(checked_bps).c_str(),
                     nsPerBlock(checked_bps))});
    t.addRow({"decode, lut kernel",
              strfmt("%s blocks/s (%.1f ns/block)",
                     grouped(lut_bps).c_str(), nsPerBlock(lut_bps))});
    t.addRow({"decode, lut2 kernel",
              strfmt("%s blocks/s (%.1f ns/block)",
                     grouped(lut2_bps).c_str(), nsPerBlock(lut2_bps))});
    t.addRow({"decode, lut2 batched (headline)",
              strfmt("%s blocks/s (%.1f ns/block)",
                     grouped(batched_bps).c_str(),
                     nsPerBlock(batched_bps))});
    t.addRow({"batched speedup over checked",
              strfmt("%.2fx (default kernel: %s)", decode_speedup,
                     codepack::decodeKernelName(
                         codepack::defaultDecodeKernel()))});
    t.addRow({strfmt("host cache, direct-mapped %u", hostpf_slots),
              strfmt("%s blocks/s (%.1f ns/block)",
                     grouped(direct_bps).c_str(),
                     nsPerBlock(direct_bps))});
    t.addRow({strfmt("host cache, LRU %u, no prefetch", hostpf_slots),
              strfmt("%s blocks/s (%.1f ns/block)",
                     grouped(lru_bps).c_str(), nsPerBlock(lru_bps))});
    t.addRow({strfmt("host cache, scored prefetch %u", hostpf_slots),
              strfmt("%s blocks/s (%.1f ns/block, %.2fx vs direct)",
                     grouped(fetcher_bps).c_str(),
                     nsPerBlock(fetcher_bps), warm_refill_speedup)});
    t.addRow({"host prefetch accuracy",
              strfmt("%s issued, %s claimed (%.1f%%)",
                     TextTable::grouped(hostpf_issued).c_str(),
                     TextTable::grouped(hostpf_hits).c_str(),
                     hostpf_hit_rate * 100.0)});
    t.addRow({"4-issue native simulation, live",
              strfmt("%s insns/s", grouped(native_ips).c_str())});
    t.addRow({"4-issue native simulation, replay",
              strfmt("%s insns/s (%.2fx)",
                     grouped(native_replay_ips).c_str(),
                     native_replay_ips /
                         (native_ips > 0 ? native_ips : 1.0))});
    t.addRow({"4-issue CodePack-opt simulation, live",
              strfmt("%s insns/s", grouped(cp_ips).c_str())});
    t.addRow({"4-issue CodePack-opt simulation, replay",
              strfmt("%s insns/s (%.2fx)", grouped(cp_replay_ips).c_str(),
                     cp_replay_ips / (cp_ips > 0 ? cp_ips : 1.0))});
    t.addRow({"1-issue in-order simulation, live",
              strfmt("%s insns/s", grouped(inorder_ips).c_str())});
    t.addRow({"1-issue in-order simulation, replay",
              strfmt("%s insns/s (%.2fx)",
                     grouped(inorder_replay_ips).c_str(),
                     inorder_replay_ips /
                         (inorder_ips > 0 ? inorder_ips : 1.0))});
    t.addRow({"matrix regeneration, serial",
              strfmt("%.2f s (%zu runs)", serial_s, reqs.size())});
    t.addRow({strfmt("matrix regeneration, %u workers", workers),
              strfmt("%.2f s (%.2fx)", parallel_s,
                     serial_s / (parallel_s > 0 ? parallel_s : 1.0))});
    t.addRow({strfmt("matrix, %u workers, live core", workers),
              strfmt("%.2f s", matrix_live_s)});
    t.addRow({strfmt("matrix, %u workers, trace replay", workers),
              strfmt("%.2f s (%.2fx)", matrix_replay_s, replay_speedup)});
    for (size_t i = 0; i < 4; ++i) {
        t.addRow({strfmt("4-issue chunked run, %u threads",
                         chunk_threads[i]),
                  strfmt("%s insns/s (%.2fx vs serial replay)",
                         grouped(chunk_ips[i]).c_str(),
                         chunk_ips[i] / (native_replay_ips > 0
                                             ? native_replay_ips
                                             : 1.0))});
    }
    for (const ChunkAccuracy &acc : accuracy) {
        t.addRow({strfmt("chunked accuracy, W=%llu",
                         static_cast<unsigned long long>(acc.warmup)),
                  strfmt("max IPC delta %.3f%%, max I-miss-rate delta "
                         "%.5f",
                         acc.maxIpcDelta * 100.0, acc.maxMissRateDelta)});
    }
    t.print();

    // --- JSON trajectory record ---------------------------------------
    FILE *f = std::fopen("BENCH_simperf.json", "w");
    if (!f) {
        std::fprintf(stderr, "could not write BENCH_simperf.json\n");
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"schema\": %d,\n"
        "  \"pregen\": {\n"
        "    \"cold_seconds\": %.4f,\n"
        "    \"warm_seconds\": %.4f,\n"
        "    \"warm_speedup\": %.3f\n"
        "  },\n"
        "  \"compress\": {\n"
        "    \"serial_seconds\": %.5f,\n"
        "    \"parallel_seconds\": %.5f,\n"
        "    \"scalar_seconds\": %.5f,\n"
        "    \"workers\": %u,\n"
        "    \"speedup\": %.3f,\n"
        "    \"simd_backend\": \"%s\",\n"
        "    \"simd_speedup\": %.3f\n"
        "  },\n"
        "  \"decode\": {\n"
        "    \"kernel_default\": \"%s\",\n"
        "    \"checked_blocks_per_sec\": %.0f,\n"
        "    \"lut_blocks_per_sec\": %.0f,\n"
        "    \"lut2_blocks_per_sec\": %.0f,\n"
        "    \"batched_blocks_per_sec\": %.0f,\n"
        "    \"checked_ns_per_block\": %.1f,\n"
        "    \"lut_ns_per_block\": %.1f,\n"
        "    \"lut2_ns_per_block\": %.1f,\n"
        "    \"batched_ns_per_block\": %.1f,\n"
        "    \"batched_speedup\": %.3f\n"
        "  },\n"
        "  \"hostpf\": {\n"
        "    \"slots\": %u,\n"
        "    \"direct_blocks_per_sec\": %.0f,\n"
        "    \"lru_blocks_per_sec\": %.0f,\n"
        "    \"fetcher_blocks_per_sec\": %.0f,\n"
        "    \"warm_refill_speedup\": %.3f,\n"
        "    \"prefetch_issued\": %llu,\n"
        "    \"prefetch_hits\": %llu,\n"
        "    \"prefetch_hit_rate\": %.4f\n"
        "  },\n"
        "  \"simulation\": {\n"
        "    \"native_insns_per_sec\": %.0f,\n"
        "    \"native_replay_insns_per_sec\": %.0f,\n"
        "    \"codepack_opt_insns_per_sec\": %.0f,\n"
        "    \"codepack_opt_replay_insns_per_sec\": %.0f,\n"
        "    \"inorder_insns_per_sec\": %.0f,\n"
        "    \"inorder_replay_insns_per_sec\": %.0f\n"
        "  },\n"
        "  \"matrix\": {\n"
        "    \"runs\": %zu,\n"
        "    \"insns_per_run\": %llu,\n"
        "    \"serial_seconds\": %.3f,\n"
        "    \"parallel_seconds\": %.3f,\n"
        "    \"workers\": %u,\n"
        "    \"speedup\": %.3f,\n"
        "    \"live_seconds\": %.3f,\n"
        "    \"replay_seconds\": %.3f,\n"
        "    \"replay_speedup\": %.3f\n"
        "  },\n"
        "  \"chunked\": {\n"
        "    \"chunk_insns\": %llu,\n"
        "    \"insns_per_sec_1t\": %.0f,\n"
        "    \"insns_per_sec_2t\": %.0f,\n"
        "    \"insns_per_sec_4t\": %.0f,\n"
        "    \"insns_per_sec_8t\": %.0f,\n"
        "    \"speedup_8t_vs_serial_replay\": %.3f,\n"
        "    \"accuracy\": [\n"
        "      {\"warmup\": %llu, \"max_ipc_delta\": %.6f, "
        "\"max_missrate_delta\": %.6f},\n"
        "      {\"warmup\": %llu, \"max_ipc_delta\": %.6f, "
        "\"max_missrate_delta\": %.6f},\n"
        "      {\"warmup\": %llu, \"max_ipc_delta\": %.6f, "
        "\"max_missrate_delta\": %.6f}\n"
        "    ]\n"
        "  }\n"
        "}\n",
        kSchema, pregen_cold_s, pregen_warm_s, pregen_speedup,
        compress_serial_s, compress_parallel_s, compress_scalar_s,
        workers, compress_speedup, simd::kBackend, simd_speedup,
        codepack::decodeKernelName(codepack::defaultDecodeKernel()),
        checked_bps, lut_bps, lut2_bps, batched_bps,
        nsPerBlock(checked_bps), nsPerBlock(lut_bps),
        nsPerBlock(lut2_bps), nsPerBlock(batched_bps),
        decode_speedup, hostpf_slots, direct_bps, lru_bps, fetcher_bps,
        warm_refill_speedup,
        static_cast<unsigned long long>(hostpf_issued),
        static_cast<unsigned long long>(hostpf_hits), hostpf_hit_rate,
        native_ips, native_replay_ips,
        cp_ips, cp_replay_ips, inorder_ips, inorder_replay_ips,
        reqs.size(),
        static_cast<unsigned long long>(insns), serial_s, parallel_s,
        workers, serial_s / (parallel_s > 0 ? parallel_s : 1.0),
        matrix_live_s, matrix_replay_s, replay_speedup,
        static_cast<unsigned long long>(chunk_insns),
        chunk_ips[0], chunk_ips[1], chunk_ips[2], chunk_ips[3],
        chunk_speedup_8t,
        static_cast<unsigned long long>(accuracy[0].warmup),
        accuracy[0].maxIpcDelta, accuracy[0].maxMissRateDelta,
        static_cast<unsigned long long>(accuracy[1].warmup),
        accuracy[1].maxIpcDelta, accuracy[1].maxMissRateDelta,
        static_cast<unsigned long long>(accuracy[2].warmup),
        accuracy[2].maxIpcDelta, accuracy[2].maxMissRateDelta);
    std::fclose(f);
    std::printf("\nWrote BENCH_simperf.json (schema %d).\n", kSchema);
    return 0;
}
