/**
 * @file
 * Thread-pool tests: task execution and completion tracking, the
 * parallelFor index contract (every index exactly once), reuse across
 * batches, and CPS_THREADS worker-count parsing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

#include "common/threadpool.hh"

namespace cps
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    pool.wait(); // idempotent
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&] { ++ran; });
        pool.wait();
        EXPECT_EQ(ran.load(), (batch + 1) * 20);
    }
}

TEST(ThreadPool, ParallelForVisitsEachIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> seen(kN);
    pool.parallelFor(kN, [&](size_t i) { ++seen[i]; });
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(seen[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForZeroAndOne)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [&](size_t) { FAIL() << "no indexes to visit"; });
    std::atomic<int> ran{0};
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++ran;
    });
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, SingleWorkerStillCompletes)
{
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    pool.parallelFor(50, [&](size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, DestructorJoinsWithPendingWork)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 40; ++i)
            pool.submit([&] { ++ran; });
        // No wait(): the destructor must drain and join cleanly.
    }
    EXPECT_EQ(ran.load(), 40);
}

TEST(DefaultThreadCount, HonorsCpsThreads)
{
    ::setenv("CPS_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    ::setenv("CPS_THREADS", "1", 1);
    EXPECT_EQ(defaultThreadCount(), 1u);
    ::unsetenv("CPS_THREADS");
    EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(DefaultThreadCount, RejectsNonsenseValues)
{
    ::setenv("CPS_THREADS", "0", 1);
    EXPECT_GE(defaultThreadCount(), 1u);
    ::setenv("CPS_THREADS", "banana", 1);
    EXPECT_GE(defaultThreadCount(), 1u);
    ::unsetenv("CPS_THREADS");
}

} // namespace
} // namespace cps
