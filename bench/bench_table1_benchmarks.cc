/**
 * @file
 * Reproduces Table 1: benchmark characteristics — dynamic instruction
 * counts and the L1 I-cache miss rate on the 4-issue baseline machine.
 *
 * Paper values (for reference): cc1 6.7%, go 6.2%, mpeg2enc 0.0%,
 * pegwit 0.1%, perl 4.4%, vortex 4.6%. The paper ran >1e9 instructions;
 * our synthetic workloads are steady within the (configurable) default
 * run length.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    TextTable t;
    t.setTitle("Table 1: Benchmarks (4-issue baseline, " +
               TextTable::grouped(insns) + " insns/run)");
    t.addHeader({"Bench", "Insns executed", "Static text (KB)",
                 "L1 I-miss rate", "Paper I-miss"});

    harness::Matrix m;
    for (const std::string &name : suite.names())
        m.add(suite.get(name), baseline4Issue(), insns);
    m.run();

    const char *paper_miss[] = {"6.7%", "6.2%", "0.0%",
                                "0.1%", "4.4%", "4.6%"};
    int row = 0;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        const harness::CellOutcome &cell = m.nextCell();
        const RunOutcome &out = cell.outcome;
        t.addRow({name,
                  cell.status.ok()
                      ? TextTable::grouped(out.result.instructions)
                      : harness::failLabel(cell.status),
                  TextTable::fmt(bench.program.text.bytes.size() / 1024.0,
                                 1),
                  cell.status.ok() ? TextTable::pct(out.icacheMissRate)
                                   : harness::failLabel(cell.status),
                  paper_miss[row++]});
    }
    t.print();
    return m.exitSummary();
}
