/**
 * @file
 * Branch predictors matching the paper's Table 2:
 *   1-issue: bimodal, 2048 entries
 *   4-issue: gshare with 14-bit history
 *   8-issue: hybrid with a 1024-entry meta chooser
 * plus a branch target buffer and a return-address stack for indirect
 * jumps.
 */

#ifndef CPS_BRANCH_PREDICTORS_HH
#define CPS_BRANCH_PREDICTORS_HH

#include <memory>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace cps
{

/** Direction predictor interface. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predicts the direction of the branch at @p pc. */
    virtual bool predict(Addr pc) = 0;

    /** Trains with the resolved outcome. */
    virtual void update(Addr pc, bool taken) = 0;

    /** Human-readable configuration summary. */
    virtual std::string describe() const = 0;
};

/** A saturating 2-bit counter; initialised weakly taken. */
class Counter2
{
  public:
    bool taken() const { return value_ >= 2; }

    void
    train(bool taken)
    {
        if (taken && value_ < 3)
            ++value_;
        else if (!taken && value_ > 0)
            --value_;
    }

  private:
    u8 value_ = 2;
};

/** Classic bimodal predictor: a PC-indexed table of 2-bit counters. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(unsigned entries = 2048)
        : mask_(entries - 1), table_(entries)
    {
        cps_assert(isPow2(entries), "bimodal size must be a power of 2");
    }

    bool predict(Addr pc) override { return table_[index(pc)].taken(); }

    void
    update(Addr pc, bool taken) override
    {
        table_[index(pc)].train(taken);
    }

    std::string
    describe() const override
    {
        return strfmt("bimodal %zu entries", table_.size());
    }

  private:
    size_t index(Addr pc) const { return (pc >> 2) & mask_; }

    size_t mask_;
    std::vector<Counter2> table_;
};

/** gshare: global history XOR PC indexes a counter table. */
class GsharePredictor : public DirectionPredictor
{
  public:
    explicit GsharePredictor(unsigned history_bits = 14)
        : historyBits_(history_bits),
          mask_((1u << history_bits) - 1),
          table_(1u << history_bits)
    {
        cps_assert(history_bits >= 1 && history_bits <= 24,
                   "gshare history out of range");
    }

    bool
    predict(Addr pc) override
    {
        return table_[index(pc)].taken();
    }

    void
    update(Addr pc, bool taken) override
    {
        table_[index(pc)].train(taken);
        history_ = ((history_ << 1) | (taken ? 1u : 0u)) & mask_;
    }

    std::string
    describe() const override
    {
        return strfmt("gshare %u-bit history", historyBits_);
    }

  private:
    size_t index(Addr pc) const { return ((pc >> 2) ^ history_) & mask_; }

    unsigned historyBits_;
    u32 mask_;
    u32 history_ = 0;
    std::vector<Counter2> table_;
};

/** Hybrid predictor: a meta table chooses between two components. */
class HybridPredictor : public DirectionPredictor
{
  public:
    HybridPredictor(unsigned meta_entries = 1024,
                    std::unique_ptr<DirectionPredictor> a = nullptr,
                    std::unique_ptr<DirectionPredictor> b = nullptr)
        : metaMask_(meta_entries - 1),
          meta_(meta_entries),
          compA_(a ? std::move(a) : std::make_unique<BimodalPredictor>(2048)),
          compB_(b ? std::move(b) : std::make_unique<GsharePredictor>(14))
    {
        cps_assert(isPow2(meta_entries), "meta size must be a power of 2");
    }

    bool
    predict(Addr pc) override
    {
        bool use_b = meta_[metaIndex(pc)].taken();
        bool pa = compA_->predict(pc);
        bool pb = compB_->predict(pc);
        return use_b ? pb : pa;
    }

    void
    update(Addr pc, bool taken) override
    {
        bool pa = compA_->predict(pc);
        bool pb = compB_->predict(pc);
        // Meta moves toward the component that was right (only when they
        // disagree, as in SimpleScalar's "comb" predictor).
        if (pa != pb)
            meta_[metaIndex(pc)].train(pb == taken);
        compA_->update(pc, taken);
        compB_->update(pc, taken);
    }

    std::string
    describe() const override
    {
        return strfmt("hybrid (%s + %s), %zu-entry meta",
                      compA_->describe().c_str(), compB_->describe().c_str(),
                      meta_.size());
    }

  private:
    size_t metaIndex(Addr pc) const { return (pc >> 2) & metaMask_; }

    size_t metaMask_;
    std::vector<Counter2> meta_;
    std::unique_ptr<DirectionPredictor> compA_;
    std::unique_ptr<DirectionPredictor> compB_;
};

/** Always-taken baseline (used in predictor ablation tests). */
class TakenPredictor : public DirectionPredictor
{
  public:
    bool predict(Addr) override { return true; }
    void update(Addr, bool) override {}
    std::string describe() const override { return "static taken"; }
};

/** Branch target buffer: set-associative map from PC to target. */
class Btb
{
  public:
    Btb(unsigned entries = 512, unsigned assoc = 4)
        : assoc_(assoc), sets_(entries / assoc),
          ways_(static_cast<size_t>(entries))
    {
        cps_assert(entries % assoc == 0 && isPow2(entries / assoc),
                   "BTB geometry must give a power-of-two set count");
    }

    /** @return predicted target, or kAddrInvalid on BTB miss */
    Addr
    lookup(Addr pc)
    {
        size_t set = setIndex(pc);
        for (unsigned i = 0; i < assoc_; ++i) {
            Way &w = ways_[set * assoc_ + i];
            if (w.valid && w.pc == pc) {
                w.lastUse = ++useClock_;
                return w.target;
            }
        }
        return kAddrInvalid;
    }

    /** Installs / refreshes the mapping pc -> target. */
    void
    update(Addr pc, Addr target)
    {
        size_t set = setIndex(pc);
        Way *victim = nullptr;
        for (unsigned i = 0; i < assoc_; ++i) {
            Way &w = ways_[set * assoc_ + i];
            if (w.valid && w.pc == pc) {
                victim = &w;
                break;
            }
            if (!w.valid) {
                if (!victim || victim->valid)
                    victim = &w;
            } else if (!victim ||
                       (victim->valid && w.lastUse < victim->lastUse)) {
                victim = &w;
            }
        }
        victim->valid = true;
        victim->pc = pc;
        victim->target = target;
        victim->lastUse = ++useClock_;
    }

  private:
    struct Way
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
        u64 lastUse = 0;
    };

    size_t setIndex(Addr pc) const { return (pc >> 2) & (sets_ - 1); }

    unsigned assoc_;
    size_t sets_;
    u64 useClock_ = 0;
    std::vector<Way> ways_;
};

/** Return-address stack (circular; pushes on call, pops on return). */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 8) : entries_(depth) {}

    void
    push(Addr return_addr)
    {
        top_ = (top_ + 1) % entries_.size();
        entries_[top_] = return_addr;
        if (size_ < entries_.size())
            ++size_;
    }

    /** @return predicted return address, or kAddrInvalid when empty */
    Addr
    pop()
    {
        if (size_ == 0)
            return kAddrInvalid;
        Addr out = entries_[top_];
        top_ = (top_ + entries_.size() - 1) % entries_.size();
        --size_;
        return out;
    }

  private:
    std::vector<Addr> entries_{8};
    size_t top_ = 0;
    size_t size_ = 0;
};

} // namespace cps

#endif // CPS_BRANCH_PREDICTORS_HH
