/**
 * @file
 * Soft-error campaigns: upset a live in-memory image N seeded times per
 * fault kind and classify how the protected fetch path handles each.
 *
 * Where the encoded-image campaign (campaign.hh) attacks the .cpi
 * container before load, this one attacks the RAM of a running system:
 * each trial restores the working image to pristine, injects one upset
 * (memfault.hh), and fetches the affected group through a BlockFetcher
 * wired to a SoftErrorDomain — the exact detect/correct/refetch path
 * the simulator runs — then compares the decoded words against a
 * pristine reference.
 *
 * Outcomes, in decreasing order of comfort:
 *   Clean         the fetch verified clean and the words match (the
 *                 upset landed in bits the decode never consumed —
 *                 possible only without protection, whose checks cover
 *                 every stream byte)
 *   Corrected     SEC-DED repaired the upset in place
 *   Refetched     a check detected it and the refetch recovered
 *   DetectedUnrecoverable  detection persisted through the refetch
 *                 budget, or the checked decoder rejected the bytes —
 *                 loud, structured, no wrong words escaped
 *   SilentWrong   the fetch raised nothing and the words differ: the
 *                 failure mode this subsystem exists to kill. With any
 *                 protection kind on it must be zero.
 */

#ifndef CPS_FAULT_SOFT_CAMPAIGN_HH
#define CPS_FAULT_SOFT_CAMPAIGN_HH

#include "codepack/compressor.hh"
#include "codepack/resilience.hh"
#include "memfault.hh"

namespace cps
{
namespace fault
{

/** How one in-memory upset was handled by the protected fetch path. */
enum class SoftOutcome
{
    Clean,
    Corrected,
    Refetched,
    DetectedUnrecoverable,
    SilentWrong,
};

constexpr unsigned kNumSoftOutcomes = 5;

/** Column heading for an outcome. */
const char *softOutcomeName(SoftOutcome outcome);

/** Soft-error campaign parameters. */
struct SoftCampaignConfig
{
    /** Protection applied to the working image (None = baseline). */
    ProtectKind protect = ProtectKind::SecDed;
    unsigned trials = 600;   ///< upsets per fault kind sweep
    u64 seed = 0x5eed50f7;   ///< base seed; trial t uses seed + t
    unsigned maxRetries = 2; ///< refetch budget per detection
    bool asyncFetch = false; ///< exercise the async speculative fetcher
};

/** Aggregated soft-error campaign counts. */
struct SoftCampaignResult
{
    unsigned trials = 0;
    unsigned byOutcome[kNumSoftOutcomes] = {};
    unsigned byKindOutcome[kNumMemFaultKinds][kNumSoftOutcomes] = {};
    /** First silently-wrong upset, for replay (valid when any). */
    MemFaultRecord firstSilentWrong;
    /** Domain counters accumulated over the whole campaign. */
    codepack::SoftErrorDomain::Stats domainStats;

    unsigned
    count(SoftOutcome o) const
    {
        return byOutcome[static_cast<unsigned>(o)];
    }

    unsigned
    count(MemFaultKind k, SoftOutcome o) const
    {
        return byKindOutcome[static_cast<unsigned>(k)]
                            [static_cast<unsigned>(o)];
    }

    unsigned silentWrong() const
    {
        return count(SoftOutcome::SilentWrong);
    }

    /** Upsets the path either fixed or loudly refused to decode. */
    unsigned
    detectedOrRecovered() const
    {
        return count(SoftOutcome::Corrected) +
               count(SoftOutcome::Refetched) +
               count(SoftOutcome::DetectedUnrecoverable);
    }
};

/**
 * Runs cfg.trials upsets of every memory-fault kind against a working
 * copy of @p img protected per cfg (cfg.trials * kNumMemFaultKinds
 * upsets in total). @p img itself is never mutated; it provides the
 * pristine reference decode. Never aborts on any upset.
 */
SoftCampaignResult runSoftCampaign(const codepack::CompressedImage &img,
                                   const SoftCampaignConfig &cfg);

} // namespace fault
} // namespace cps

#endif // CPS_FAULT_SOFT_CAMPAIGN_HH
