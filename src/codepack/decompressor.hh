/**
 * @file
 * Functional CodePack decompression (the bit-exact inverse of the
 * compressor) plus the per-instruction bit positions the timing model
 * needs to know which memory beat completes which instruction.
 */

#ifndef CPS_CODEPACK_DECOMPRESSOR_HH
#define CPS_CODEPACK_DECOMPRESSOR_HH

#include <array>
#include <vector>

#include "common/result.hh"
#include "common/types.hh"
#include "compressor.hh"

namespace cps
{
namespace codepack
{

/** One decompressed 16-instruction block. */
struct DecodedBlock
{
    std::array<u32, kBlockInsns> words{};
    /**
     * For each instruction, the bit offset (from the start of the block's
     * bytes) just past its final codeword bit. The serial decoder cannot
     * emit instruction i before the beat carrying this bit arrives.
     */
    std::array<u32, kBlockInsns> endBit{};
    u32 byteOffset = 0; ///< of the block within the compressed region
    u32 byteLen = 0;
    bool raw = false;
};

/** Stateless functional decompressor over a CompressedImage. */
class Decompressor
{
  public:
    explicit Decompressor(const CompressedImage &img) : img_(img) {}

    /**
     * Decompresses block @p block (0/1) of compression group @p group.
     * Walks the index table exactly as the hardware would.
     *
     * Trusted-input variant: any malformation panics. The simulator's
     * hot path uses this on images it compressed itself; anything that
     * came off disk should be decoded via tryDecompressBlock (or fully
     * vetted with tryDecompressAll once at load).
     *
     * Decoding runs through the dictionaries' single-pass LUT kernel;
     * any anomaly falls back to the checked bit-serial path so the
     * panic diagnostics are identical to tryDecompressBlock's errors.
     */
    DecodedBlock decompressBlock(u32 group, u32 block) const;

    /**
     * Checked variant for untrusted images: an out-of-range index
     * entry, truncated codeword, or length cross-check failure comes
     * back as a structured DecodeError (bit offsets are absolute
     * within the compressed byte region) instead of aborting.
     */
    Result<DecodedBlock> tryDecompressBlock(u32 group, u32 block) const;

    /** Decompresses the flat block number @p flat_block. */
    DecodedBlock
    decompressFlatBlock(u32 flat_block) const
    {
        return decompressBlock(flat_block / kBlocksPerGroup,
                               flat_block % kBlocksPerGroup);
    }

    /** Decompresses the whole image back to instruction words. */
    std::vector<u32> decompressAll() const;

    /**
     * Checked whole-image decode: validates the image structure, then
     * decodes every block through the checked path. The error carries
     * the first failing group/block in its message.
     */
    Result<std::vector<u32>> tryDecompressAll() const;

    const CompressedImage &image() const { return img_; }

  private:
    /**
     * LUT fast path shared by decompressBlock. Returns false (leaving
     * @p out unspecified) when the stream needs the checked decoder —
     * the caller re-decodes via tryDecompressBlock for the diagnostic.
     */
    bool fastDecompressBlock(u32 group, u32 block, DecodedBlock &out) const;

    const CompressedImage &img_;
};

/**
 * Host-side memo of decoded blocks, keyed by (group, block). The
 * simulated decompressor hardware re-decodes a block on every I-cache
 * miss; functionally the result never changes, so the host keeps the
 * last N decoded blocks in a direct-mapped cache and skips the decode
 * entirely on a hit. Purely a host optimization: simulated timing and
 * statistics are computed from the returned block exactly as before.
 * Not thread-safe; each Machine owns its own instance.
 */
class BlockCache
{
  public:
    /**
     * @param decomp the decompressor to memoize (must outlive the cache)
     * @param slots direct-mapped slot count (rounded up to a power of 2)
     */
    explicit BlockCache(const Decompressor &decomp, unsigned slots = 64);

    /** The decoded block, from the memo when present. */
    const DecodedBlock &get(u32 group, u32 block);

    u64 hits() const { return hits_; }
    u64 fills() const { return fills_; }

  private:
    struct Slot
    {
        u32 flat = kInvalid;
        DecodedBlock blk;
    };
    static constexpr u32 kInvalid = ~0u;

    const Decompressor &decomp_;
    std::vector<Slot> slots_;
    u32 mask_;
    u64 hits_ = 0;
    u64 fills_ = 0;
};

/**
 * Structural validation of a decoded image: header-field consistency
 * (group/block counts vs paddedInsns, origTextBytes within the padded
 * region) and every index-table entry and block extent within the
 * compressed byte region. Does not decode codewords — use
 * Decompressor::tryDecompressAll for a full vet.
 */
Result<void> validateImage(const CompressedImage &img);

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_DECOMPRESSOR_HH
