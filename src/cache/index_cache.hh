/**
 * @file
 * The CodePack index cache (paper §5.3, Table 6).
 *
 * The index table lives in main memory; the decompressor caches recently
 * used entries. The paper's baseline CodePack keeps exactly the last-used
 * entry (1 line x 1 index); the optimized configuration is a
 * fully-associative cache of 64 lines with 4 index entries per line
 * ("1KB of index entries and 88 bytes of tag storage").
 *
 * Lookup is by compression-group number. A line covers @c indexesPerLine
 * consecutive groups, so a single fill maps indexesPerLine * 128 bytes of
 * native text.
 *
 * Beyond the paper's fully-associative true-LRU design, the cache
 * supports the replacement and geometry ablations of the adaptive
 * prefetch family (bench_ext_prefetch_adapt): FIFO and seeded-random
 * victim selection, and a set-associative partition of the lines (tag
 * modulo set count selects the set; each set is searched and replaced
 * independently). The defaults reproduce the paper's behaviour exactly.
 */

#ifndef CPS_CACHE_INDEX_CACHE_HH
#define CPS_CACHE_INDEX_CACHE_HH

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace cps
{

/** Victim-selection policy of the index cache (ablation knob). */
enum class IndexReplacement : u8
{
    Lru,    ///< true LRU (the paper's design)
    Fifo,   ///< oldest fill evicted, accesses do not refresh
    Random, ///< deterministic seeded-random victim
};

/** Short stable spelling ("lru"/"fifo"/"random"). */
inline const char *
indexReplacementName(IndexReplacement repl)
{
    switch (repl) {
      case IndexReplacement::Lru:
        return "lru";
      case IndexReplacement::Fifo:
        return "fifo";
      case IndexReplacement::Random:
        return "random";
    }
    return "?";
}

/** Cache over index-table entries; associativity and policy above. */
class IndexCache
{
  public:
    /**
     * @param lines number of cache lines in total
     * @param indexes_per_line consecutive index entries per line
     * @param repl victim-selection policy
     * @param sets set count; 1 = fully associative. Lines are divided
     *        evenly (lines must be a multiple of sets); a line's set is
     *        its tag modulo @p sets.
     */
    IndexCache(unsigned lines, unsigned indexes_per_line,
               IndexReplacement repl = IndexReplacement::Lru,
               unsigned sets = 1)
        : indexesPerLine_(indexes_per_line), repl_(repl), sets_(sets),
          lines_(lines)
    {
        cps_assert(lines >= 1 && indexes_per_line >= 1,
                   "index cache needs at least one line and one index");
        cps_assert(sets >= 1 && lines % sets == 0,
                   "index cache set count %u must divide %u lines", sets,
                   lines);
    }

    unsigned numLines() const { return static_cast<unsigned>(lines_.size()); }
    unsigned indexesPerLine() const { return indexesPerLine_; }
    unsigned numSets() const { return sets_; }
    IndexReplacement replacement() const { return repl_; }

    /** Total bytes of index entries held (each entry is 32 bits). */
    unsigned
    dataBytes() const
    {
        return numLines() * indexesPerLine_ * 4;
    }

    /**
     * Looks up the line covering compression group @p group.
     * @return true on hit (LRU updated)
     */
    bool
    access(u32 group)
    {
        Line *l = find(group);
        if (!l)
            return false;
        if (repl_ == IndexReplacement::Lru)
            l->lastUse = ++useClock_;
        return true;
    }

    /** Inserts the line covering @p group, evicting per the policy. */
    void
    fill(u32 group)
    {
        u32 tag = group / indexesPerLine_;
        unsigned ways = numLines() / sets_;
        unsigned base = (tag % sets_) * ways;
        Line *victim = nullptr;
        for (unsigned w = 0; w < ways; ++w) {
            Line &l = lines_[base + w];
            if (!l.valid) {
                victim = &l;
                break;
            }
        }
        if (!victim) {
            switch (repl_) {
              case IndexReplacement::Lru:
              case IndexReplacement::Fifo:
                // FIFO reuses lastUse as the fill sequence number
                // (access() never refreshes it under FIFO).
                for (unsigned w = 0; w < ways; ++w) {
                    Line &l = lines_[base + w];
                    if (!victim || l.lastUse < victim->lastUse)
                        victim = &l;
                }
                break;
              case IndexReplacement::Random:
                victim = &lines_[base + rng_.below(ways)];
                break;
            }
        }
        victim->valid = true;
        victim->tag = tag;
        victim->lastUse = ++useClock_;
    }

    /** Invalidates all lines (and resets the replacement state). */
    void
    invalidateAll()
    {
        for (Line &l : lines_)
            l = Line{};
        useClock_ = 0;
        rng_ = Rng(kRngSeed);
    }

  private:
    struct Line
    {
        bool valid = false;
        u32 tag = 0;
        u64 lastUse = 0;
    };

    /** Fixed seed: random replacement must replay deterministically. */
    static constexpr u64 kRngSeed = 0x1dc0deULL;

    Line *
    find(u32 group)
    {
        u32 tag = group / indexesPerLine_;
        unsigned ways = numLines() / sets_;
        unsigned base = (tag % sets_) * ways;
        for (unsigned w = 0; w < ways; ++w) {
            Line &l = lines_[base + w];
            if (l.valid && l.tag == tag)
                return &l;
        }
        return nullptr;
    }

    unsigned indexesPerLine_;
    IndexReplacement repl_;
    unsigned sets_;
    u64 useClock_ = 0;
    Rng rng_{kRngSeed};
    std::vector<Line> lines_;
};

} // namespace cps

#endif // CPS_CACHE_INDEX_CACHE_HH
