/**
 * @file
 * Crash-isolated execution of one experiment-matrix cell.
 *
 * A table run is a long campaign of independent simulations; one hung
 * or crashing cell must not take down the parent process and discard
 * every completed cell. With isolation enabled (CPS_ISOLATE=1) the
 * CellRunner forks a worker per cell, the worker runs runMachine and
 * ships the RunOutcome back over a pipe as a CRC'd frame
 * (common/ipc_frame), and the parent classifies whatever happens —
 * verified result, crash signal, nonzero exit, garbled stream, or
 * deadline expiry — into a structured CellStatus. Failures are retried
 * a bounded number of times with exponential backoff (the cells are
 * deterministic, so retries target transient host causes: OOM kills,
 * external signals). The default path stays inline and byte-identical
 * to the pre-isolation engine.
 *
 * Knobs (read once per process by CellRunnerConfig::fromEnv):
 *   CPS_ISOLATE=1          fork one worker per cell (default: inline)
 *   CPS_CELL_TIMEOUT_MS    per-cell wall-clock deadline (default 0 = none)
 *   CPS_CELL_RETRIES       extra attempts after a failure (default 1)
 *   CPS_CELL_BACKOFF_MS    base backoff, doubled per attempt (default 100)
 */

#ifndef CPS_HARNESS_CELL_RUNNER_HH
#define CPS_HARNESS_CELL_RUNNER_HH

#include <string>
#include <vector>

#include "common/result.hh"
#include "suite.hh"

namespace cps
{
namespace harness
{

/**
 * Deliberate worker misbehaviour, injected by tests and the
 * process-level fault campaign to prove the parent survives each
 * failure mode. Faults fire inside the worker before (or instead of)
 * the simulation; under the inline path they are applied honestly and
 * will take the process down — isolation is the point.
 */
enum class CellFault : u8
{
    None,
    Crash,       ///< die by SIGSEGV-style signal (raise SIGABRT)
    KillSelf,    ///< kill(getpid(), SIGKILL): an external OOM-style kill
    Hang,        ///< never produce a result (sleep forever)
    Garble,      ///< write a corrupt result frame, then exit 0
    ExitNonzero, ///< exit(3) without producing a result
    CrashOnce,   ///< Crash on the first attempt only (retry succeeds)
    SlowResult,  ///< sleep faultDelayMs before running, then succeed —
                 ///< lands the result right at a configured deadline
};

/** One cell of an experiment matrix. */
struct RunRequest
{
    const BenchProgram *bench = nullptr; ///< must outlive the run
    MachineConfig cfg;
    u64 maxInsns = 0;
    ReplayMode mode = ReplayMode::Auto; ///< trace replay vs live core
    CellFault injectFault = CellFault::None;
    u32 faultDelayMs = 0; ///< SlowResult's sleep before executing
};

/** How a cell's execution ended. */
enum class CellState : u8
{
    Ok,            ///< verified result in hand
    Crashed,       ///< worker died by signal (termSignal)
    ExitedError,   ///< worker exited nonzero without a result (exitCode)
    Timeout,       ///< worker exceeded the wall-clock deadline
    ProtocolError, ///< worker's result stream was garbled or missing
    Stalled,       ///< the in-simulator progress watchdog tripped
    DecodeFault,   ///< unrecoverable corruption on the decompression path
};

/** Short stable name for a state ("ok", "crashed", "timeout", ...). */
const char *cellStateName(CellState state);

/** Structured account of one cell's execution (final attempt). */
struct CellStatus
{
    CellState state = CellState::Ok;
    int termSignal = 0;       ///< valid for Crashed
    int exitCode = 0;         ///< valid for ExitedError
    unsigned attempts = 1;    ///< attempts consumed (1 = first try)
    bool fromJournal = false; ///< replayed from a resume journal
    std::string detail;       ///< human-readable diagnosis

    bool ok() const { return state == CellState::Ok; }

    /** "crashed (signal 9) after 2 attempts" etc. */
    std::string describe() const;
};

/**
 * Table placeholder for a cell that exhausted its retries:
 * "FAILED(sig=6)", "FAILED(timeout)", "FAILED(exit=3)", ...
 */
std::string failLabel(const CellStatus &status);

/** A cell's result plus how it was obtained. */
struct CellOutcome
{
    RunOutcome outcome; ///< zeroed when !status.ok()
    CellStatus status;
};

/** Resilience policy for cell execution. */
struct CellRunnerConfig
{
    bool isolate = false;    ///< fork one worker per cell
    long timeoutMs = 0;      ///< per-cell deadline; 0 = none
    unsigned retries = 1;    ///< extra attempts after a failure
    unsigned backoffMs = 100; ///< base backoff, doubled per attempt

    /** The process-wide policy (CPS_ISOLATE & friends, read once). */
    static const CellRunnerConfig &fromEnv();
};

/**
 * Executes matrix cells under a resilience policy. Stateless apart
 * from the config; safe to share across pool threads (forks are
 * serialized internally, workers run concurrently).
 */
class CellRunner
{
  public:
    explicit CellRunner(CellRunnerConfig cfg) : cfg_(cfg) {}

    const CellRunnerConfig &config() const { return cfg_; }

    /** Runs @p req with bounded retry; never throws or aborts the
     *  calling process when isolation is on. */
    CellOutcome run(const RunRequest &req) const;

  private:
    CellOutcome runAttempt(const RunRequest &req, unsigned attempt) const;
    CellOutcome runInline(const RunRequest &req, unsigned attempt) const;
    CellOutcome runIsolated(const RunRequest &req, unsigned attempt) const;

    CellRunnerConfig cfg_;
};

/**
 * Result-envelope serialization shared by the worker pipe and the
 * resume journal. decodeRunOutcomeChecked verifies structure; the
 * surrounding frame already carries the CRC.
 */
std::vector<u8> encodeRunOutcome(const RunOutcome &out);
Result<RunOutcome> decodeRunOutcomeChecked(const std::vector<u8> &bytes);

/**
 * Registers @p fd to be closed in every subsequently forked cell
 * worker (and removes it again). The campaign daemon runs an accept
 * loop in the same process that forks workers; a worker inheriting the
 * listening socket or a client connection would keep that peer from
 * ever seeing EOF after the daemon dies — exactly the kind of silent
 * hang the service exists to prevent. Thread-safe; fds already
 * registered are ignored.
 */
void registerWorkerCloseFd(int fd);
void unregisterWorkerCloseFd(int fd);

/**
 * Cache-style key of one cell: every input the outcome is a function
 * of — the benchmark's full program key, every MachineConfig field,
 * the instruction budget and replay mode — plus an engine version tag,
 * so any code or config change invalidates journal entries by
 * construction.
 */
std::string cellKey(const RunRequest &req);

/** Key of a whole matrix: all cell keys (order included) + version. */
std::string matrixKey(const std::vector<RunRequest> &requests);

} // namespace harness
} // namespace cps

#endif // CPS_HARNESS_CELL_RUNNER_HH
