/**
 * @file
 * Portable SIMD wrapper for the byte-level scan loops of the
 * compression pipeline.
 *
 * Exactly three operations are wrapped — the ones the CodePack
 * compressor's hot loops are built from:
 *
 *   - splitHalves:      deinterleave instruction words into high/low
 *                       halfword lanes (the layout every other loop
 *                       consumes);
 *   - findU16:          first-match scan of a halfword array (the
 *                       dictionary match, i.e. the software analogue of
 *                       the hardware CAM probe);
 *   - histogramHalves:  halfword frequency counting for dictionary
 *                       construction.
 *
 * The backend is chosen at compile time: SSE2 on x86-64, NEON on
 * AArch64, and a plain scalar loop everywhere else or when the build
 * opts out with -DCPS_SIMD=OFF (which defines CPS_SIMD_DISABLED). The
 * scalar reference implementations live in simd::scalar and are always
 * compiled, whatever the backend: tests pin the vector paths against
 * them, and the compressor's CPS-level ablation benches time one
 * against the other.
 *
 * Every routine is semantically exact — same results for any input,
 * including unaligned lengths and empty arrays — so swapping backends
 * can never change compressed output. That contract is enforced by
 * tests/test_simd.cc.
 */

#ifndef CPS_COMMON_SIMD_HH
#define CPS_COMMON_SIMD_HH

#include <cstddef>

#include "types.hh"

#if !defined(CPS_SIMD_DISABLED) && (defined(__SSE2__) || defined(_M_X64))
#define CPS_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(CPS_SIMD_DISABLED) && defined(__ARM_NEON)
#define CPS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace cps
{
namespace simd
{

/** Compile-time backend name, rendered into bench JSON. */
#if defined(CPS_SIMD_SSE2)
constexpr const char *kBackend = "sse2";
constexpr bool kVectorized = true;
#elif defined(CPS_SIMD_NEON)
constexpr const char *kBackend = "neon";
constexpr bool kVectorized = true;
#else
constexpr const char *kBackend = "scalar";
constexpr bool kVectorized = false;
#endif

namespace scalar
{

/** Splits @p n words into their high and low 16-bit halves. */
inline void
splitHalves(const u32 *words, size_t n, u16 *hi, u16 *lo)
{
    for (size_t i = 0; i < n; ++i) {
        hi[i] = static_cast<u16>(words[i] >> 16);
        lo[i] = static_cast<u16>(words[i] & 0xffff);
    }
}

/** Index of the first element equal to @p needle, or @p n if absent. */
inline size_t
findU16(const u16 *vals, size_t n, u16 needle)
{
    for (size_t i = 0; i < n; ++i)
        if (vals[i] == needle)
            return i;
    return n;
}

/**
 * Accumulates halfword frequencies of @p n words into the 65536-entry
 * tables @p hi and @p lo (not cleared here; callers own the zeroing so
 * chunked accumulation composes).
 */
inline void
histogramHalves(const u32 *words, size_t n, u64 *hi, u64 *lo)
{
    for (size_t i = 0; i < n; ++i) {
        ++hi[words[i] >> 16];
        ++lo[words[i] & 0xffff];
    }
}

} // namespace scalar

#if defined(CPS_SIMD_SSE2)

inline void
splitHalves(const u32 *words, size_t n, u16 *hi, u16 *lo)
{
    // Per 128-bit vector: four u32 lanes -> four u16 high and low
    // lanes. packs_epi32 saturates signed, so both halves are biased by
    // -0x8000 before the pack and un-biased after — the pack is then
    // exact for the full 16-bit range.
    const __m128i bias32 = _mm_set1_epi32(0x8000);
    const __m128i bias16 = _mm_set1_epi16(static_cast<short>(0x8000));
    const __m128i lomask = _mm_set1_epi32(0xffff);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(words + i));
        __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(words + i + 4));
        __m128i ah = _mm_sub_epi32(_mm_srli_epi32(a, 16), bias32);
        __m128i bh = _mm_sub_epi32(_mm_srli_epi32(b, 16), bias32);
        __m128i al = _mm_sub_epi32(_mm_and_si128(a, lomask), bias32);
        __m128i bl = _mm_sub_epi32(_mm_and_si128(b, lomask), bias32);
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(hi + i),
            _mm_xor_si128(_mm_packs_epi32(ah, bh), bias16));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(lo + i),
            _mm_xor_si128(_mm_packs_epi32(al, bl), bias16));
    }
    scalar::splitHalves(words + i, n - i, hi + i, lo + i);
}

inline size_t
findU16(const u16 *vals, size_t n, u16 needle)
{
    const __m128i key = _mm_set1_epi16(static_cast<short>(needle));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(vals + i));
        int mask = _mm_movemask_epi8(_mm_cmpeq_epi16(v, key));
        if (mask)
            return i + static_cast<size_t>(__builtin_ctz(
                           static_cast<unsigned>(mask))) /
                           2;
    }
    size_t rest = scalar::findU16(vals + i, n - i, needle);
    return rest == n - i ? n : i + rest;
}

#elif defined(CPS_SIMD_NEON)

inline void
splitHalves(const u32 *words, size_t n, u16 *hi, u16 *lo)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        uint32x4_t v = vld1q_u32(words + i);
        vst1_u16(hi + i, vshrn_n_u32(v, 16));
        vst1_u16(lo + i, vmovn_u32(v));
    }
    scalar::splitHalves(words + i, n - i, hi + i, lo + i);
}

inline size_t
findU16(const u16 *vals, size_t n, u16 needle)
{
    const uint16x8_t key = vdupq_n_u16(needle);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        uint16x8_t eq = vceqq_u16(vld1q_u16(vals + i), key);
        // Narrow each 16-bit lane's compare result to 4 bits; the
        // 64-bit reinterpretation then holds one nibble per lane and
        // ctz/4 names the first hit.
        uint64_t mask = vget_lane_u64(
            vreinterpret_u64_u8(vshrn_n_u16(eq, 4)), 0);
        if (mask)
            return i +
                   static_cast<size_t>(__builtin_ctzll(mask)) / 8;
    }
    size_t rest = scalar::findU16(vals + i, n - i, needle);
    return rest == n - i ? n : i + rest;
}

#else

inline void
splitHalves(const u32 *words, size_t n, u16 *hi, u16 *lo)
{
    scalar::splitHalves(words, n, hi, lo);
}

inline size_t
findU16(const u16 *vals, size_t n, u16 needle)
{
    return scalar::findU16(vals, n, needle);
}

#endif

/**
 * Accumulates halfword frequencies of @p n words into the 65536-entry
 * tables @p hi and @p lo. Vector backends deinterleave a block of
 * words into dense halfword lanes first (one streaming pass instead of
 * a shift+mask per element), then count each lane in a tight scalar
 * loop — the increments themselves are a scatter no 128-bit ISA can
 * vectorize. Tables are accumulated into, not cleared, exactly like
 * the scalar reference.
 */
inline void
histogramHalves(const u32 *words, size_t n, u64 *hi, u64 *lo)
{
    if (!kVectorized || n < 16) {
        scalar::histogramHalves(words, n, hi, lo);
        return;
    }
    constexpr size_t kChunk = 256;
    u16 hbuf[kChunk], lbuf[kChunk];
    for (size_t at = 0; at < n; at += kChunk) {
        size_t c = n - at < kChunk ? n - at : kChunk;
        splitHalves(words + at, c, hbuf, lbuf);
        for (size_t i = 0; i < c; ++i)
            ++hi[hbuf[i]];
        for (size_t i = 0; i < c; ++i)
            ++lo[lbuf[i]];
    }
}

} // namespace simd
} // namespace cps

#endif // CPS_COMMON_SIMD_HH
