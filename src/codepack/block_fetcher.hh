/**
 * @file
 * Scored host-side prefetch cache over the functional decompressor —
 * the successor of the direct-mapped BlockCache memo.
 *
 * The fetcher watches the flat-block access sequence, confirms a
 * stride (sequential fetch is stride 1), and speculatively decodes the
 * predicted next blocks with the batched multi-lane kernel
 * (Decompressor::decompressBlocks) on pool workers, so host decode
 * overlaps the caller's own work (simulated timing refills, software
 * traps). Decoded blocks live in an LRU-of-N cache.
 *
 * The hot path is allocation-free: entries live in a fixed slab with
 * intrusive LRU links, the flat->slot map is a dense vector (flat
 * block numbers are small and bounded by the image), speculative
 * decodes are dispatched in up-to-16-block spans to amortize
 * task-dispatch cost, and a claimed block is returned by reference
 * into the span's storage — no copy.
 *
 * Determinism: every cache decision — scoring, issue, eviction, claim,
 * every counter — happens on the caller's thread as a pure function of
 * the access sequence. Workers only write into span storage that the
 * caller reads after acquiring the span's Done state (a happens-before
 * edge), and a span the pool has not started yet is stolen and decoded
 * inline — who decodes never changes what is decoded — so hit/fill/
 * prefetch counters are byte-identical across sync and async modes,
 * pool widths, and runs. The pool is created lazily on first
 * speculative issue, which keeps forked cell workers (CPS_ISOLATE=1)
 * safe: each child builds its own pool after the fork.
 *
 * Inline (sync) speculation is the default: for a decode-bound caller
 * the batched kernel on the consumer's own thread beats the pool
 * handoff (wakeup latency costs more than the decode itself — see
 * DESIGN.md). Async pays off when the caller computes between fetches,
 * as the simulator does; opt in with CPS_BLOCK_PREFETCH=async.
 *
 * Knobs (read per-construction, see Options::fromEnv):
 *   CPS_BLOCK_CACHE_SLOTS  cache capacity (default 64)
 *   CPS_BLOCK_PREFETCH     "0"/"off" = plain LRU memo, "async" =
 *                          speculative decode on pool workers,
 *                          "1"/"sync" (default) = speculative batched
 *                          decode inline on the caller
 */

#ifndef CPS_CODEPACK_BLOCK_FETCHER_HH
#define CPS_CODEPACK_BLOCK_FETCHER_HH

#include <array>
#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/threadpool.hh"
#include "decompressor.hh"
#include "resilience.hh"

namespace cps
{
namespace codepack
{

/** Scored prefetching LRU memo of decoded blocks. */
class BlockFetcher
{
  public:
    struct Options
    {
        /** LRU cache capacity in blocks (min 1). */
        unsigned slots = 64;
        /** Speculatively decode predicted blocks at all. */
        bool prefetch = true;
        /** Run speculative decodes on pool workers (else inline). */
        bool async = false;
        /**
         * Prediction window in blocks ahead of the last access.
         * Clamped to slots/2 so speculative inserts can never evict
         * predicted-but-unclaimed blocks (which would turn the whole
         * window into wasted decode).
         */
        unsigned depth = 32;

        /** Reads CPS_BLOCK_CACHE_SLOTS / CPS_BLOCK_PREFETCH afresh. */
        static Options fromEnv();
    };

    /** Blocks decoded per speculative span (one pool dispatch). */
    static constexpr unsigned kSpanBlocks = 16;

    /**
     * @param decomp decompressor to memoize (must outlive the fetcher)
     * @param opts knobs; defaults come from the environment
     * @param stats optional registry for "hostpf." counters
     * @param domain optional soft-error domain; when given, it must
     *        wrap the image @p decomp decodes, every fetch is verified
     *        through it first, cached copies of a block whose memory
     *        was repaired are poison-invalidated and re-decoded, all
     *        decodes run checked (a corruption that slips past a weak
     *        CRC surfaces as a structured error, never a panic), and
     *        the caller must quiesce() before mutating domain memory.
     */
    explicit BlockFetcher(const Decompressor &decomp,
                          Options opts = Options::fromEnv(),
                          StatSet *stats = nullptr,
                          SoftErrorDomain *domain = nullptr);

    /** Waits out in-flight speculative decodes, then joins workers. */
    ~BlockFetcher();

    BlockFetcher(const BlockFetcher &) = delete;
    BlockFetcher &operator=(const BlockFetcher &) = delete;

    /**
     * The decoded block, from the cache when present. The reference
     * stays valid until the next get() (same contract as BlockCache).
     */
    const DecodedBlock &get(u32 group, u32 block);

    /** As get(group, block), keyed by flat block number. */
    const DecodedBlock &getFlat(u32 flat);

    /**
     * Checked fetch for soft-error callers: an unrecoverable
     * corruption (or a decode failure that slipped past a weak check)
     * comes back as the structured DecodeError instead of a panic. The
     * returned pointer follows getFlat's lifetime contract. Without a
     * domain this never fails.
     */
    Result<const DecodedBlock *> tryGetFlat(u32 flat);

    /**
     * ECC/CRC verdict of the most recent (try)getFlat when a domain is
     * attached; Clean otherwise. The timing model charges correction
     * and refetch latency off this.
     */
    FetchCheck lastCheck() const { return lastCheck_; }

    /**
     * Resolves every in-flight speculative decode. Callers that mutate
     * the domain's memory (fault injectors) must quiesce first: async
     * span workers read the image bytes concurrently.
     */
    void quiesce();

    u64 hits() const { return hits_; }
    u64 fills() const { return fills_; }
    u64 prefetchIssued() const { return pfIssued_; }
    /** First-touch claims of speculatively decoded blocks. */
    u64 prefetchHits() const { return pfHits_; }
    /** Cached copies discarded after their memory was found corrupt. */
    u64 poisons() const { return poisons_; }
    unsigned slots() const { return opts_.slots; }
    const Options &options() const { return opts_; }
    SoftErrorDomain *domain() const { return domain_; }

  private:
    /** One batched speculative decode in flight (or finished). */
    struct SpecSpan
    {
        enum : int { Queued = 0, Running = 1, Done = 2 };

        std::array<u32, kSpanBlocks> flats;
        unsigned count = 0;
        bool contiguous = true;
        std::array<DecodedBlock, kSpanBlocks> blks;
        /** Per-lane checked-decode success (domain mode only; written
         *  by the decoder before Done, read after acquiring it). */
        std::array<u8, kSpanBlocks> ok{};
        /**
         * Decode ownership: a worker (or the consumer, stealing a span
         * the pool has not started) CASes Queued->Running, decodes,
         * and release-stores Done; blks is read only after an
         * acquire-load of Done.
         */
        std::atomic<int> state{Queued};
        /** Consumer-side memo: Done already observed. */
        bool done = false;
    };

    struct Entry
    {
        u32 flat = kInvalid;
        bool prefetched = false; ///< speculative, not yet claimed
        std::shared_ptr<SpecSpan> span; ///< non-null for span lanes
        unsigned lane = 0;              ///< slot in span->blks
        DecodedBlock blk;               ///< demand-fill storage
        u32 prev = kInvalid, next = kInvalid; ///< intrusive LRU chain
    };
    static constexpr u32 kInvalid = ~0u;

    void unlink(u32 i);
    void pushFront(u32 i);
    /** A slot for @p flat: its resident slot, a fresh one, or the LRU
     *  victim; unlinked from the chain, map updated. */
    u32 claimSlot(u32 flat);
    /** Discards @p flat's cached copy (its memory was corrupt) and
     *  parks the slot at the LRU tail as the next eviction victim. */
    void poisonSlot(u32 flat);
    void train(u32 flat);
    void issuePrefetches(u32 flat);
    void issueSpan(const u32 *flats, unsigned count, bool contiguous);
    void decodeInto(const u32 *flats, unsigned count, bool contiguous,
                    DecodedBlock *out, u8 *ok) const;
    /**
     * Ensures @p s is decoded: claims and decodes it inline when the
     * pool has not started it (work stealing — the batched inline
     * decode is cheaper than idling), else waits for the worker.
     */
    void resolveSpan(SpecSpan &s);

    const Decompressor &decomp_;
    Options opts_;

    std::vector<Entry> slab_;  ///< fixed; intrusive links, no realloc
    u32 head_ = kInvalid;      ///< most recently used
    u32 tail_ = kInvalid;      ///< least recently used
    u32 live_ = 0;             ///< slab entries handed out so far
    std::vector<u32> map_;     ///< flat -> slab index (dense)

    // Access scorer.
    bool haveLast_ = false;
    u32 lastFlat_ = 0;
    s64 stride_ = 0;
    unsigned conf_ = 0;
    /** One past the highest flat covered by the current unit-stride
     *  prefetch run; avoids rescanning the cache every access. */
    u32 frontier_ = 0;

    /** Sync-mode decode target: reused, so no per-span allocation. */
    std::array<DecodedBlock, kSpanBlocks> scratch_;
    std::array<u8, kSpanBlocks> scratchOk_{};

    /** Spans submitted to the pool and not yet known-finished. */
    std::deque<std::shared_ptr<SpecSpan>> inflight_;
    static constexpr unsigned kMaxInflight = 4;

    std::unique_ptr<ThreadPool> pool_; ///< lazily created (fork safety)

    SoftErrorDomain *domain_ = nullptr;
    FetchCheck lastCheck_ = FetchCheck::Clean;

    u64 hits_ = 0;
    u64 fills_ = 0;
    u64 pfIssued_ = 0;
    u64 pfHits_ = 0;
    u64 poisons_ = 0;
    Counter *statHits_ = nullptr;
    Counter *statFills_ = nullptr;
    Counter *statPfIssued_ = nullptr;
    Counter *statPfHits_ = nullptr;
    Counter *statPoisons_ = nullptr;
};

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_BLOCK_FETCHER_HH
