/**
 * @file
 * Trace-replay equivalence: a timing run that replays a recorded
 * instruction stream must be indistinguishable — RunResult and every
 * counter in the StatSet — from one that drives the functional executor
 * live. This is the contract that lets harness::Suite execute each
 * benchmark once and replay it under every machine configuration.
 * Also covers the TraceBuffer coverage rules and the live-execution
 * fallback for truncated traces.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/trace.hh"
#include "harness/suite.hh"

namespace cps
{
namespace
{

constexpr u64 kInsns = 20000;

const codepack::CompressedImage *
imageFor(const BenchProgram &bench, const MachineConfig &cfg)
{
    return cfg.codeModel == CodeModel::Native ? nullptr : &bench.image;
}

void
expectSameRun(const RunResult &a, const RunResult &b,
              const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.programExited, b.programExited) << what;
}

TEST(TraceReplay, EveryProfileEveryPipelineMatchesLiveExactly)
{
    Suite &suite = Suite::instance();
    suite.pregenerate();
    const MachineConfig configs[] = {
        baseline1Issue(),
        baseline1Issue().withCodeModel(CodeModel::CodePack),
        baseline4Issue(),
        baseline4Issue().withCodeModel(CodeModel::CodePack),
    };
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        ASSERT_TRUE(bench.trace) << name;
        for (const MachineConfig &cfg : configs) {
            ASSERT_TRUE(bench.trace->covers(kInsns, replayLookahead(cfg)));
            std::string what = name + " / " + cfg.name +
                               (cfg.codeModel == CodeModel::Native
                                    ? " native"
                                    : " codepack");

            Machine live(bench.program, cfg, imageFor(bench, cfg));
            ASSERT_FALSE(live.replaying());
            RunResult lr = live.run(kInsns);

            Machine replay(bench.program, cfg, imageFor(bench, cfg),
                           bench.trace.get());
            ASSERT_TRUE(replay.replaying());
            RunResult rr = replay.run(kInsns);

            expectSameRun(lr, rr, what);
            EXPECT_EQ(live.stats().snapshot(), replay.stats().snapshot())
                << "StatSet diverged for " << what;
        }
    }
}

TEST(TraceReplay, RecordedStreamMatchesExecutorStepForStep)
{
    const BenchProgram &bench = Suite::instance().get("go");
    TraceBuffer trace = recordTrace(bench.program, 5000);
    ASSERT_EQ(trace.size(), 5000u); // go runs far longer than the cap
    EXPECT_FALSE(trace.complete());

    MainMemory mem;
    mem.loadSegment(bench.program.text);
    mem.loadSegment(bench.program.data);
    DecodedText text(bench.program);
    Executor exec(text, mem);
    exec.reset(bench.program);
    TraceReplaySource src(trace, text);
    for (size_t i = 0; i < trace.size(); ++i) {
        StepRecord live = exec.step();
        StepRecord rep = src.step();
        ASSERT_EQ(live.pc, rep.pc) << "step " << i;
        ASSERT_EQ(live.nextPc, rep.nextPc) << "step " << i;
        ASSERT_EQ(live.memAddr, rep.memAddr) << "step " << i;
        ASSERT_EQ(live.taken, rep.taken) << "step " << i;
        ASSERT_EQ(live.halted, rep.halted) << "step " << i;
        ASSERT_EQ(live.inst, rep.inst) << "step " << i;
        ASSERT_EQ(live.info, rep.info) << "step " << i;
    }
}

TEST(TraceReplay, CoverageRules)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    TraceBuffer trace = recordTrace(bench.program, 1000);
    ASSERT_EQ(trace.size(), 1000u);
    EXPECT_FALSE(trace.complete());

    // In-order consumes exactly the retired count; OoO fetches ahead.
    EXPECT_TRUE(trace.covers(1000, 0));
    EXPECT_FALSE(trace.covers(1000, replayLookahead(baseline4Issue())));
    EXPECT_TRUE(trace.covers(800, replayLookahead(baseline4Issue())));
    EXPECT_FALSE(trace.covers(2000, 0));

    // A trace that ends with the program's exit covers any run length.
    TraceBuffer done = recordTrace(bench.program, 1000);
    done.markComplete();
    EXPECT_TRUE(done.covers(1u << 30, 4096));
}

TEST(TraceReplay, TruncatedTraceFallsBackToLiveExecution)
{
    Suite &suite = Suite::instance();
    const BenchProgram &full = suite.get("go");

    // A clone whose trace is too short for kInsns: runMachine must fall
    // back to live execution and still produce identical outcomes.
    BenchProgram clone;
    clone.profile = full.profile;
    clone.program = full.program;
    clone.image = full.image;
    clone.trace = std::make_unique<const TraceBuffer>(
        recordTrace(clone.program, 1000));

    MachineConfig cfg = baseline4Issue();
    ASSERT_FALSE(clone.trace->covers(kInsns, replayLookahead(cfg)));
    RunOutcome fallback = runMachine(clone, cfg, kInsns);
    RunOutcome live = runMachine(full, cfg, kInsns, ReplayMode::ForceLive);
    expectSameRun(fallback.result, live.result, "truncated fallback");
    EXPECT_EQ(fallback.icacheMisses, live.icacheMisses);
    EXPECT_EQ(fallback.missLatencyTotal, live.missLatencyTotal);
}

TEST(TraceReplay, ReplaySourceRewindRestartsTheStream)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    TraceBuffer trace = recordTrace(bench.program, 16);
    DecodedText text(bench.program);
    TraceReplaySource src(trace, text);
    StepRecord first = src.step();
    src.step();
    src.rewind();
    StepRecord again = src.step();
    EXPECT_EQ(first.pc, again.pc);
    EXPECT_EQ(first.nextPc, again.nextPc);
    EXPECT_FALSE(src.halted());
}

} // namespace
} // namespace cps
