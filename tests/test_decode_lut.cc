/**
 * @file
 * Decode-LUT equivalence tests. The trusted decompressBlock path decodes
 * through a precomputed single-pass LUT; the checked tryDecompressBlock
 * path stays bit-serial. These tests pin the contract between them:
 *
 *  - on every block of every benchmark profile the two decoders agree
 *    bit for bit (words, end-bit positions, framing metadata);
 *  - on streams the LUT cannot resolve (truncations, unpopulated
 *    dictionary indexes) readFast declines without consuming anything,
 *    and the checked path reports the precise DecodeStatus;
 *  - the trusted path reproduces the checked path's diagnostic when it
 *    is fed a corrupt image (a simulator bug by definition);
 *  - the windowed 64-bit BitReader matches a bit-at-a-time shadow
 *    reader on random streams, including backward seeks and the
 *    zero-padded peek used by the LUT probe.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "codepack/compressor.hh"
#include "codepack/decompressor.hh"
#include "common/rng.hh"
#include "harness/suite.hh"

namespace cps
{
namespace codepack
{
namespace
{

TEST(DecodeLut, TrustedMatchesCheckedOnEveryProfileBlock)
{
    Suite &suite = Suite::instance();
    suite.pregenerate();
    for (const std::string &name : suite.names()) {
        const CompressedImage &img = suite.get(name).image;
        Decompressor d(img);
        for (u32 g = 0; g < img.numGroups(); ++g) {
            for (u32 b = 0; b < kBlocksPerGroup; ++b) {
                Result<DecodedBlock> ref = d.tryDecompressBlock(g, b);
                ASSERT_TRUE(ref.ok()) << name << " group " << g;
                DecodedBlock fast = d.decompressBlock(g, b);
                const DecodedBlock &want = ref.value();
                EXPECT_EQ(fast.byteOffset, want.byteOffset);
                EXPECT_EQ(fast.byteLen, want.byteLen);
                EXPECT_EQ(fast.raw, want.raw);
                for (unsigned i = 0; i < kBlockInsns; ++i) {
                    ASSERT_EQ(fast.words[i], want.words[i])
                        << name << " group " << g << " block " << b
                        << " insn " << i;
                    ASSERT_EQ(fast.endBit[i], want.endBit[i])
                        << name << " group " << g << " block " << b
                        << " insn " << i;
                }
            }
        }
    }
}

/** A dictionary with a couple of populated banks for stream tests. */
Dictionary
smallHighDict()
{
    std::unordered_map<u16, u64> counts;
    counts[0x1111] = 1000; // lands in bank 0
    counts[0x2222] = 900;
    counts[0x3333] = 800;
    return Dictionary::build(Dictionary::Kind::High, counts);
}

TEST(DecodeLut, ReadFastMatchesTryReadOnValidStreams)
{
    Dictionary d = smallHighDict();
    const u16 vals[] = {0x1111, 0x2222, 0xbeef, 0x3333, 0x1111, 0xffff};
    BitWriter bw;
    for (u16 v : vals)
        d.write(bw, v);
    bw.alignByte();
    std::vector<u8> bytes = bw.take();

    BitReader fast(bytes.data(), bytes.size());
    BitReader ref(bytes.data(), bytes.size());
    for (u16 want : vals) {
        u16 got = 0;
        ASSERT_TRUE(d.readFast(fast, got));
        EXPECT_EQ(got, want);
        Result<u16> checked = d.tryRead(ref);
        ASSERT_TRUE(checked.ok());
        EXPECT_EQ(checked.value(), want);
        EXPECT_EQ(fast.bitPos(), ref.bitPos())
            << "LUT and bit-serial decode must consume identical bits";
    }
}

TEST(DecodeLut, TruncatedStreamDeclinesAndChecksAsTruncated)
{
    Dictionary d = smallHighDict();
    BitWriter bw;
    d.write(bw, 0xbeef); // raw escape: 3 tag bits + 16 literal bits
    std::vector<u8> bytes = bw.take();

    // Chop the stream so the literal cannot complete.
    BitReader fast(bytes.data(), 1);
    u16 out = 0;
    EXPECT_FALSE(d.readFast(fast, out));
    EXPECT_EQ(fast.bitPos(), 0u) << "a declined readFast consumes nothing";

    BitReader ref(bytes.data(), 1);
    Result<u16> checked = d.tryRead(ref);
    ASSERT_FALSE(checked.ok());
    EXPECT_EQ(checked.error().status, DecodeStatus::Truncated);
}

TEST(DecodeLut, UnpopulatedIndexDeclinesAndChecksAsRangeError)
{
    // Bank 0 holds 3 entries; fabricate the codeword for index 9.
    Dictionary d = smallHighDict();
    BitWriter bw;
    bw.put(0b00, 2); // bank-0 tag (high dictionary)
    bw.put(9, 4);    // index beyond the population
    bw.alignByte();
    std::vector<u8> bytes = bw.take();

    BitReader fast(bytes.data(), bytes.size());
    u16 out = 0;
    EXPECT_FALSE(d.readFast(fast, out));
    EXPECT_EQ(fast.bitPos(), 0u);

    BitReader ref(bytes.data(), bytes.size());
    Result<u16> checked = d.tryRead(ref);
    ASSERT_FALSE(checked.ok());
    EXPECT_EQ(checked.error().status, DecodeStatus::RangeError);
}

TEST(DecodeLutDeathTest, TrustedPathReproducesCheckedDiagnostic)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const BenchProgram &bench = Suite::instance().get("pegwit");
    CompressedImage img = bench.image;
    ASSERT_FALSE(img.bytes.empty());
    // Scribble over the first group's stream until the checked decoder
    // objects, then insist the trusted path dies with that diagnostic.
    Rng rng(0x517e);
    for (int attempt = 0; attempt < 200; ++attempt) {
        CompressedImage bad = img;
        size_t at = rng.below(static_cast<u32>(bad.bytes.size()));
        bad.bytes[at] ^= static_cast<u8>(1u << rng.below(8));
        Decompressor d(bad);
        for (u32 g = 0; g < bad.numGroups(); ++g) {
            for (u32 b = 0; b < kBlocksPerGroup; ++b) {
                Result<DecodedBlock> ref = d.tryDecompressBlock(g, b);
                if (ref.ok()) {
                    // Both decoders still accept this block — and then
                    // they must agree exactly.
                    DecodedBlock fast = d.decompressBlock(g, b);
                    for (unsigned i = 0; i < kBlockInsns; ++i)
                        ASSERT_EQ(fast.words[i], ref.value().words[i]);
                    continue;
                }
                EXPECT_DEATH(d.decompressBlock(g, b),
                             "decompressBlock on corrupt image");
                return; // one fault that reached decode is enough
            }
        }
    }
    FAIL() << "no corruption ever produced a checked decode error";
}

/** Reads @p width bits at absolute bit @p pos, one bit at a time. */
u32
shadowRead(const std::vector<u8> &bytes, size_t pos, unsigned width)
{
    u32 out = 0;
    for (unsigned i = 0; i < width; ++i, ++pos) {
        unsigned bit = (bytes[pos >> 3] >> (7 - (pos & 7))) & 1u;
        out = (out << 1) | bit;
    }
    return out;
}

TEST(BitReaderWindow, MatchesBitSerialShadowOnRandomStreams)
{
    Rng rng(0x51dd);
    std::vector<u8> bytes(257);
    for (u8 &b : bytes)
        b = static_cast<u8>(rng.below(256));

    BitReader br(bytes.data(), bytes.size());
    size_t pos = 0;
    while (br.remaining() >= 32) {
        unsigned width = 1 + rng.below(32);
        if (width > br.remaining())
            width = static_cast<unsigned>(br.remaining());
        ASSERT_EQ(br.peek(width), shadowRead(bytes, pos, width));
        ASSERT_EQ(br.get(width), shadowRead(bytes, pos, width));
        pos += width;
        ASSERT_EQ(br.bitPos(), pos);
    }
}

TEST(BitReaderWindow, BackwardSeekRefillsTheWindow)
{
    Rng rng(0xcafe);
    std::vector<u8> bytes(64);
    for (u8 &b : bytes)
        b = static_cast<u8>(rng.below(256));

    BitReader br(bytes.data(), bytes.size());
    u32 first = br.get(13);
    br.get(24); // march the window forward
    ASSERT_TRUE(br.seekBit(0));
    EXPECT_EQ(br.get(13), first)
        << "a backward seek must not reuse the advanced window";
}

TEST(BitReaderWindow, PeekPaddedZeroFillsPastTheEnd)
{
    std::vector<u8> bytes{0xff, 0xff};
    BitReader br(bytes.data(), bytes.size());
    br.skip(8);
    // 8 real bits remain; a 12-bit padded peek reads them into the top
    // of the field with zeros below.
    EXPECT_EQ(br.peekPadded(12), 0xffu << 4);
    br.skip(8);
    EXPECT_EQ(br.remaining(), 0u);
    EXPECT_EQ(br.peekPadded(11), 0u);
}

TEST(BitReaderWindow, TrySkipChecksAvailability)
{
    std::vector<u8> bytes{0xab, 0xcd};
    BitReader br(bytes.data(), bytes.size());
    EXPECT_TRUE(br.trySkip(10));
    EXPECT_EQ(br.bitPos(), 10u);
    EXPECT_FALSE(br.trySkip(7));
    EXPECT_EQ(br.bitPos(), 10u) << "a failed trySkip must not move";
    EXPECT_TRUE(br.trySkip(6));
    EXPECT_EQ(br.remaining(), 0u);
}

} // namespace
} // namespace codepack
} // namespace cps
