/**
 * @file
 * Reproduces Table 9: the two optimizations individually and combined,
 * as speedup over native on the 4-issue machine.
 *
 * Paper shape: the index cache helps more than the wider decoder; both
 * together ("All") recover (and for go/perl/vortex slightly exceed)
 * native performance.
 */

#include "common/table.hh"
#include "harness/suite.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();

    TextTable t;
    t.setTitle("Table 9: Comparison of optimizations "
               "(speedup over native, 4-issue)");
    t.addHeader({"Bench", "CodePack", "Index", "Decompress", "All"});

    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        RunOutcome native = runMachine(bench, baseline4Issue(), insns);

        RunOutcome base = runMachine(
            bench, baseline4Issue().withCodeModel(CodeModel::CodePack),
            insns);

        MachineConfig idx_cfg = baseline4Issue();
        idx_cfg.codeModel = CodeModel::CodePackCustom;
        idx_cfg.decomp.indexCacheLines = 64;
        idx_cfg.decomp.indexesPerLine = 4;
        idx_cfg.decomp.burstIndexFill = true;
        RunOutcome idx = runMachine(bench, idx_cfg, insns);

        MachineConfig dec_cfg = baseline4Issue();
        dec_cfg.codeModel = CodeModel::CodePackCustom;
        dec_cfg.decomp.decodeRate = 2;
        RunOutcome dec = runMachine(bench, dec_cfg, insns);

        RunOutcome all = runMachine(
            bench,
            baseline4Issue().withCodeModel(CodeModel::CodePackOptimized),
            insns);

        t.addRow({name, TextTable::fmt(speedup(native, base), 3),
                  TextTable::fmt(speedup(native, idx), 3),
                  TextTable::fmt(speedup(native, dec), 3),
                  TextTable::fmt(speedup(native, all), 3)});
    }
    t.print();
    return 0;
}
