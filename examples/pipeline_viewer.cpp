/**
 * @file
 * Pipeline viewer: renders the 1-issue in-order pipeline's timing for a
 * short code snippet as an ASCII diagram — one row per instruction,
 * 'F' where fetch completed, 'X' where the op entered EX, 'R' where the
 * result was ready. Run it twice to see the same snippet under native
 * and CodePack code models: the compressed run's fetch column shifts
 * right on the I-cache miss while decompression streams the line in.
 *
 * Build & run:  ./build/examples/pipeline_viewer
 */

#include <cstdio>
#include <vector>

#include "asmkit/assembler.hh"
#include "codepack/compressor.hh"
#include "pipeline/inorder.hh"
#include "sim/codepack_fetch.hh"
#include "sim/machine.hh"

using namespace cps;

namespace
{

void
renderTrace(const char *title, const std::vector<PipeTraceEntry> &trace)
{
    std::printf("%s\n", title);
    if (trace.empty())
        return;
    Cycle base = trace.front().fetchDone;
    constexpr unsigned kWidth = 64;

    std::printf("  %-28s|", "cycle ->");
    for (unsigned c = 0; c < kWidth; c += 10)
        std::printf("%-10llu", static_cast<unsigned long long>(base + c));
    std::printf("\n");

    for (const PipeTraceEntry &e : trace) {
        std::string lane(kWidth, '.');
        auto mark = [&](Cycle t, char ch) {
            if (t >= base && t < base + kWidth) {
                size_t i = static_cast<size_t>(t - base);
                lane[i] = lane[i] == '.' ? ch : '*';
            }
        };
        mark(e.fetchDone, 'F');
        mark(e.execute, 'X');
        mark(e.resultAt, 'R');
        std::string text = disassemble(e.inst, e.pc);
        if (text.size() > 26)
            text.resize(26);
        std::printf("  %-28s|%s\n", text.c_str(), lane.c_str());
    }
    std::printf("\n");
}

std::vector<PipeTraceEntry>
traceRun(const Program &prog, const codepack::CompressedImage *img,
         u64 insns)
{
    MachineConfig cfg = baseline1Issue();
    MainMemory mem(cfg.mem);
    mem.loadSegment(prog.text);
    mem.loadSegment(prog.data);
    DecodedText text(prog);
    Executor exec(text, mem);
    exec.reset(prog);
    StatSet stats;
    DataPath data(cfg.dcache, mem, stats);

    std::vector<PipeTraceEntry> trace;
    if (img) {
        CodePackFetchPath fetch(cfg.icache, *img, mem,
                                codepack::DecompressorConfig{}, stats);
        InOrderPipeline pipe(cfg.pipeline, exec, fetch, data, stats);
        pipe.setTraceSink(&trace);
        pipe.run(insns);
    } else {
        NativeFetchPath fetch(cfg.icache, mem, stats);
        InOrderPipeline pipe(cfg.pipeline, exec, fetch, data, stats);
        pipe.setTraceSink(&trace);
        pipe.run(insns);
    }
    return trace;
}

} // namespace

int
main()
{
    const char *source = R"(
.data
buf: .word 5, 7, 0, 0
.text
main:
    la   $t9, buf
    lw   $t0, 0($t9)      # load ...
    addu $t1, $t0, $t0    # ... load-use bubble
    lw   $t2, 4($t9)
    mul  $t3, $t1, $t2    # 3-cycle multiply blocks the pipe
    addu $t4, $t3, $t0
    sw   $t4, 8($t9)
    beq  $t4, $zero, skip # not taken
    addiu $t5, $t4, 1
skip:
    li   $v0, 10
    syscall
)";
    Program prog = assembleOrDie(source);
    codepack::CompressedImage img = codepack::compress(prog);

    std::printf("1-issue in-order pipeline timing "
                "(F = fetched, X = execute, R = result)\n\n");
    renderTrace("native code (critical word first at t=10):",
                traceRun(prog, nullptr, 12));
    renderTrace("CodePack baseline (index fetch + serial decode):",
                traceRun(prog, &img, 12));
    return 0;
}
