/**
 * @file
 * Reproduces Table 12: sensitivity to main-memory latency (0.5x / 1x /
 * 2x / 4x / 8x of the baseline's 10-cycle first access, 2-cycle rate) on
 * the 4-issue machine; speedup over native with the same latency.
 *
 * Paper shape: as memory slows down the optimized decompressor pulls
 * ahead of native code — it needs fewer of the (now very expensive)
 * main-memory accesses.
 */

#include <iterator>

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    struct Lat { const char *label; Cycle first; Cycle rate; };
    const Lat lats[] = {
        {"0.5x", 5, 1}, {"1x", 10, 2}, {"2x", 20, 4},
        {"4x", 40, 8}, {"8x", 80, 16},
    };

    TextTable t;
    t.setTitle("Table 12: Performance change due to memory latency "
               "(speedup over native with the same latency, 4-issue)");
    std::vector<std::string> header{"Bench"};
    for (const Lat &l : lats) {
        header.push_back(std::string(l.label) + " CP");
        header.push_back(std::string(l.label) + " Opt");
    }
    t.addHeader(header);

    harness::Matrix m;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        for (const Lat &l : lats) {
            MachineConfig native = baseline4Issue();
            native.mem.firstAccess = l.first;
            native.mem.beatRate = l.rate;
            m.add(bench, native, insns);
            m.add(bench, native.withCodeModel(CodeModel::CodePack), insns);
            m.add(bench,
                  native.withCodeModel(CodeModel::CodePackOptimized),
                  insns);
        }
    }
    m.run();

    auto fmtSpd = [](const RunOutcome &n, const RunOutcome &o) {
        return TextTable::fmt(speedup(n, o), 3);
    };
    for (const std::string &name : suite.names()) {
        std::vector<std::string> row{name};
        for (size_t i = 0; i < std::size(lats); ++i) {
            harness::CellOutcome cn = m.nextCell();
            harness::CellOutcome cc = m.nextCell();
            harness::CellOutcome co = m.nextCell();
            row.push_back(harness::fmtCells(cn, cc, fmtSpd));
            row.push_back(harness::fmtCells(cn, co, fmtSpd));
        }
        t.addRow(row);
    }
    t.print();
    return m.exitSummary();
}
