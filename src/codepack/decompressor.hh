/**
 * @file
 * Functional CodePack decompression (the bit-exact inverse of the
 * compressor) plus the per-instruction bit positions the timing model
 * needs to know which memory beat completes which instruction.
 */

#ifndef CPS_CODEPACK_DECOMPRESSOR_HH
#define CPS_CODEPACK_DECOMPRESSOR_HH

#include <array>
#include <vector>

#include "common/result.hh"
#include "common/types.hh"
#include "compressor.hh"

namespace cps
{
namespace codepack
{

/** One decompressed 16-instruction block. */
struct DecodedBlock
{
    std::array<u32, kBlockInsns> words{};
    /**
     * For each instruction, the bit offset (from the start of the block's
     * bytes) just past its final codeword bit. The serial decoder cannot
     * emit instruction i before the beat carrying this bit arrives.
     */
    std::array<u32, kBlockInsns> endBit{};
    u32 byteOffset = 0; ///< of the block within the compressed region
    u32 byteLen = 0;
    bool raw = false;
};

/**
 * Which kernel the trusted decompressBlock path runs. The ladder, from
 * reference to fastest (see DESIGN.md, "Decode kernels"):
 *
 *   - Checked: the bit-serial tryDecompressBlock reference, promoted to
 *     trusted semantics (panic on malformation);
 *   - Lut: one LUT probe per codeword, two probes per instruction off
 *     a fused 22-bit peek (the PR 2 kernel);
 *   - Lut2: a register-resident bit buffer feeds the fused PairLut,
 *     which resolves both codewords of an instruction in one probe
 *     whenever they pack into its PairLut::kBits window, one-and-a-bit
 *     probes otherwise; raw halfword escapes decode inline from the
 *     buffer without dropping to the checked path.
 *
 * Every rung decodes bit-identically (enforced by test_decode_lut);
 * the knob exists so benches can ablate kernels.
 */
enum class DecodeKernel { Checked, Lut, Lut2 };

/**
 * The process-wide default kernel: CPS_DECODE_KERNEL=checked|lut|lut2,
 * read once; unset or malformed values mean Lut2 (malformed warns).
 */
DecodeKernel defaultDecodeKernel();

/** The knob spelling of @p kernel ("checked"/"lut"/"lut2"). */
const char *decodeKernelName(DecodeKernel kernel);

/** Stateless functional decompressor over a CompressedImage. */
class Decompressor
{
  public:
    /**
     * @param img the image to decode (must outlive the decompressor)
     * @param kernel trusted-path kernel; defaults to the
     *        CPS_DECODE_KERNEL choice. The PairLut is only built for
     *        Lut2, so ablation decompressors cost nothing extra.
     */
    explicit Decompressor(const CompressedImage &img,
                          DecodeKernel kernel = defaultDecodeKernel())
        : img_(img), kernel_(kernel)
    {
        if (kernel_ == DecodeKernel::Lut2)
            pair_ = PairLut(img.highDict, img.lowDict);
    }

    DecodeKernel kernel() const { return kernel_; }

    /**
     * Decompresses block @p block (0/1) of compression group @p group.
     * Walks the index table exactly as the hardware would.
     *
     * Trusted-input variant: any malformation panics. The simulator's
     * hot path uses this on images it compressed itself; anything that
     * came off disk should be decoded via tryDecompressBlock (or fully
     * vetted with tryDecompressAll once at load).
     *
     * Decoding runs through the dictionaries' single-pass LUT kernel;
     * any anomaly falls back to the checked bit-serial path so the
     * panic diagnostics are identical to tryDecompressBlock's errors.
     */
    DecodedBlock decompressBlock(u32 group, u32 block) const;

    /**
     * Checked variant for untrusted images: an out-of-range index
     * entry, truncated codeword, or length cross-check failure comes
     * back as a structured DecodeError (bit offsets are absolute
     * within the compressed byte region) instead of aborting.
     */
    Result<DecodedBlock> tryDecompressBlock(u32 group, u32 block) const;

    /** Decompresses the flat block number @p flat_block. */
    DecodedBlock
    decompressFlatBlock(u32 flat_block) const
    {
        return decompressBlock(flat_block / kBlocksPerGroup,
                               flat_block % kBlocksPerGroup);
    }

    /**
     * Trusted batched decode of @p count consecutive blocks starting
     * at flat block @p first, into @p outs.
     *
     * Blocks are independently indexed bitstreams, so the Lut2 kernel
     * decodes up to four of them interleaved in one loop: the
     * per-block bit-buffer/LUT-probe dependency chains overlap instead
     * of serializing, which is where the batched kernel's headline
     * per-block latency comes from (bench_ext_simperf's decode
     * section). Results are bit-identical to per-block decode; any
     * anomaly, raw block, or non-Lut2 kernel falls back to
     * decompressBlock per block (same trusted semantics: malformation
     * panics with the checked path's diagnostics).
     */
    void decompressBlocks(u32 first, u32 count, DecodedBlock *outs) const;

    /**
     * Trusted batched decode of both blocks of @p group — the burst
     * shape of the hardware decompressor, which fills a group's two
     * cache lines from one index-table lookup.
     */
    void
    decompressGroup(u32 group, DecodedBlock outs[kBlocksPerGroup]) const
    {
        decompressBlocks(group * kBlocksPerGroup, kBlocksPerGroup, outs);
    }

    /** Decompresses the whole image back to instruction words. */
    std::vector<u32> decompressAll() const;

    /**
     * Checked whole-image decode: validates the image structure, then
     * decodes every block through the checked path. The error carries
     * the first failing group/block in its message.
     */
    Result<std::vector<u32>> tryDecompressAll() const;

    const CompressedImage &image() const { return img_; }

  private:
    /**
     * Single-symbol LUT fast path (DecodeKernel::Lut). Returns false
     * (leaving @p out unspecified) when the stream needs the checked
     * decoder — the caller re-decodes via tryDecompressBlock for the
     * diagnostic.
     */
    bool fastDecompressBlock(u32 group, u32 block, DecodedBlock &out) const;

    /**
     * Batched pair-LUT fast path (DecodeKernel::Lut2): one PairLut
     * probe per instruction in the common case, with the same
     * decline-to-checked contract as fastDecompressBlock.
     */
    bool fastDecompressBlock2(u32 group, u32 block,
                              DecodedBlock &out) const;

    /**
     * Shared fast-path prologue: resolves the block's framing from the
     * index table into @p out and, for raw blocks, copies the native
     * words. Returns false when the framing itself is malformed (the
     * checked path owns the diagnostic). Sets @p done when @p out is
     * already complete (raw block).
     */
    bool frameFastBlock(u32 group, u32 block, DecodedBlock &out,
                        bool &done) const;

    /**
     * Interleaved decode of @p width (2 or 4) consecutive non-raw
     * blocks starting at flat block @p first. Returns false — and the
     * caller re-decodes per block — when any block is raw or any
     * stream declines to the checked path.
     */
    bool fastDecodeBatch(u32 first, unsigned width,
                         DecodedBlock *outs) const;

    const CompressedImage &img_;
    DecodeKernel kernel_;
    PairLut pair_; ///< built only for DecodeKernel::Lut2
};

/**
 * Host-side memo of decoded blocks, keyed by (group, block). The
 * simulated decompressor hardware re-decodes a block on every I-cache
 * miss; functionally the result never changes, so the host keeps the
 * last N decoded blocks in a direct-mapped cache and skips the decode
 * entirely on a hit. Purely a host optimization: simulated timing and
 * statistics are computed from the returned block exactly as before.
 * Not thread-safe; each Machine owns its own instance.
 */

/**
 * Default capacity of the host-side decoded-block memos (BlockCache and
 * BlockFetcher): the CPS_BLOCK_CACHE_SLOTS environment variable when
 * set to a positive integer, otherwise 64. Read afresh on every call so
 * tests can flip it between constructions.
 */
unsigned defaultBlockCacheSlots();

class BlockCache
{
  public:
    /**
     * @param decomp the decompressor to memoize (must outlive the cache)
     * @param slots direct-mapped slot count (rounded up to a power of
     *        2); 0 means defaultBlockCacheSlots()
     */
    explicit BlockCache(const Decompressor &decomp, unsigned slots = 0);

    /** The decoded block, from the memo when present. */
    const DecodedBlock &get(u32 group, u32 block);

    u64 hits() const { return hits_; }
    u64 fills() const { return fills_; }

  private:
    struct Slot
    {
        u32 flat = kInvalid;
        DecodedBlock blk;
    };
    static constexpr u32 kInvalid = ~0u;

    const Decompressor &decomp_;
    std::vector<Slot> slots_;
    u32 mask_;
    u64 hits_ = 0;
    u64 fills_ = 0;
};

/**
 * Structural validation of a decoded image: header-field consistency
 * (group/block counts vs paddedInsns, origTextBytes within the padded
 * region) and every index-table entry and block extent within the
 * compressed byte region. Does not decode codewords — use
 * Decompressor::tryDecompressAll for a full vet.
 */
Result<void> validateImage(const CompressedImage &img);

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_DECOMPRESSOR_HH
