/**
 * @file
 * CCRP-style compression (Wolfe & Chanin / Kozuch & Wolfe): each
 * 32-byte I-cache line is Huffman-encoded byte by byte at compile time;
 * a Line Address Table (LAT) maps native line addresses to compressed
 * offsets. Decoding is bit-serial and history-based, which is exactly
 * why the paper contrasts CodePack's halfword symbols against it (§2.2):
 * CCRP compresses comparably but decodes much more slowly.
 *
 * This is one of the two related-work baselines used by the ablation
 * benchmark (bench_ablation_compressors).
 */

#ifndef CPS_COMPRESS_CCRP_HH
#define CPS_COMPRESS_CCRP_HH

#include <vector>

#include "common/types.hh"
#include "huffman.hh"
#include "line_codec.hh"

namespace cps
{
namespace compress
{

/** A CCRP-compressed text image. */
class CcrpImage : public LineCodec
{
  public:
    /**
     * Compresses @p words (the .text) at native base @p text_base.
     * @param threads workers for the two-phase parallel encode
     *        (per-chunk byte histogram, then per-line Huffman); 0 means
     *        defaultThreadCount(). Output is byte-identical at every
     *        thread count — lines are byte-aligned and independently
     *        addressed, so only the serial stitch orders bytes.
     */
    static CcrpImage compress(const std::vector<u32> &words,
                              Addr text_base, unsigned threads = 0);

    /** Decompresses everything (round-trip testing). */
    std::vector<u32> decompressAll() const;

    // LineCodec interface -------------------------------------------------
    u32 numLines() const override
    {
        return static_cast<u32>(lineOffsets_.size());
    }
    Addr textBase() const override { return textBase_; }
    LineExtent extent(u32 line) const override;
    std::array<u32, 8> insnEndBytes(u32 line) const override;
    unsigned decodeCyclesPerInsn() const override { return 4; }
    const char *name() const override { return "ccrp"; }

    /** Compression ratio including LAT and code-table overheads. */
    double compressionRatio() const;

    u64 latBits() const { return u64{numLines()} * 32; }
    u64 tableBits() const { return code_.tableBits(); }
    u64 streamBits() const { return u64{bytes_.size()} * 8; }
    u32 origTextBytes() const { return origTextBytes_; }

  private:
    Addr textBase_ = 0;
    u32 origTextBytes_ = 0;
    std::vector<u8> bytes_;
    std::vector<u32> lineOffsets_; ///< LAT: per-line byte offsets
    std::vector<std::array<u32, 8>> insnEnds_; ///< per line, per insn
    HuffmanCode code_;
};

} // namespace compress
} // namespace cps

#endif // CPS_COMPRESS_CCRP_HH
