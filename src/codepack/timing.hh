/**
 * @file
 * Cycle-level model of the CodePack decompression unit on the L1 I-cache
 * miss path (paper §3.2 and Figure 2).
 *
 * Modelled behaviours:
 *   - index-table lookup in main memory, with an index cache probed in
 *     parallel with the L1 (a hit adds no latency). The paper's baseline
 *     CodePack caches the single last-used entry (1 line x 1 index);
 *     the optimized model uses 64 lines x 4 indexes, and a "perfect"
 *     mode never misses (Table 7);
 *   - burst read of the compressed block from main memory;
 *   - serial decode at a configurable rate (1/2/16 instructions per
 *     cycle, Table 8), overlapped with the arriving beats;
 *   - a 16-instruction output buffer that is always filled completely,
 *     acting as a prefetch of the block's other cache line;
 *   - instruction forwarding: the missed word is ready the cycle it is
 *     decoded, not when the whole line is filled.
 */

#ifndef CPS_CODEPACK_TIMING_HH
#define CPS_CODEPACK_TIMING_HH

#include <array>

#include "block_fetcher.hh"
#include "cache/index_cache.hh"
#include "common/stats.hh"
#include "decompressor.hh"
#include "mem/main_memory.hh"

namespace cps
{
namespace codepack
{

/** Modeled block prefetcher ahead of the decompressor (ablation knob). */
enum class PrefetchKind : u8
{
    None,      ///< the paper's design: output buffer only
    NextBlock, ///< always predict the next sequential block(s)
    Stride,    ///< confirmed-stride predictor over the block sequence
};

/** Short stable spelling ("none"/"next"/"stride"). */
inline const char *
prefetchKindName(PrefetchKind k)
{
    switch (k) {
      case PrefetchKind::None:
        return "none";
      case PrefetchKind::NextBlock:
        return "next";
      case PrefetchKind::Stride:
        return "stride";
    }
    return "?";
}

/** Decompressor hardware configuration. */
struct DecompressorConfig
{
    /** Index cache geometry; the baseline is the last-used entry. */
    unsigned indexCacheLines = 1;
    unsigned indexesPerLine = 1;
    /** A perfect index cache never misses (index table in on-chip ROM). */
    bool perfectIndexCache = false;
    /** Fetch the whole index-cache line in one burst on an index miss. */
    bool burstIndexFill = false;
    /** Decode bandwidth in instructions per cycle (1, 2, ... 16). */
    unsigned decodeRate = 1;
    /** Block prefetcher; None reproduces the paper's timing exactly. */
    PrefetchKind prefetch = PrefetchKind::None;
    /** Blocks predicted per trigger; also the prefetch-buffer count. */
    unsigned prefetchDepth = 1;
    /** Index-cache victim policy (ablation; the paper uses true LRU). */
    IndexReplacement indexReplacement = IndexReplacement::Lru;
    /** Index-cache set count; 1 = fully associative (the paper). */
    unsigned indexCacheSets = 1;

    /**
     * Per-block protection checked on every fetched block. None keeps
     * the paper's timing bit-identical; any other kind charges
     * eccCheckCycles per fetch even without a soft-error domain (pure
     * protection-cost studies).
     */
    ProtectKind protect = ProtectKind::None;
    /** Pipelined ECC/CRC check latency added to every beat's arrival. */
    unsigned eccCheckCycles = 1;
    /** Extra cycles when SEC-DED repairs a single-bit error in place. */
    unsigned eccCorrectCycles = 3;
    /**
     * Soft-error recovery domain wrapping the simulated image. When
     * set, every fetch is verified through it (corrections and
     * refetches cost cycles, an unrecoverable corruption latches
     * DecompressorModel::softError); it must wrap the same image the
     * model decodes and outlive the model.
     */
    SoftErrorDomain *softErrorDomain = nullptr;

    /** The paper's optimized configuration (§5.3). */
    static DecompressorConfig
    optimized()
    {
        DecompressorConfig cfg;
        cfg.indexCacheLines = 64;
        cfg.indexesPerLine = 4;
        cfg.burstIndexFill = true;
        cfg.decodeRate = 2;
        return cfg;
    }
};

/** Words per I-cache line (32-byte lines of 4-byte instructions). */
constexpr unsigned kLineWords = 8;

/** Timing of one I-cache line fill produced by the decompressor. */
struct LineFill
{
    /** Cycle each word of the requested line becomes available. */
    std::array<Cycle, kLineWords> wordReady{};
    /** When the complete line has been delivered. */
    Cycle fillDone = 0;
    /** The request was served from the output buffer (prefetch hit). */
    bool fromBuffer = false;
};

/** Event trace of the most recent miss (drives the Figure 2 bench). */
struct MissTrace
{
    Cycle requestCycle = 0;
    bool bufferHit = false;
    bool indexHit = false;
    bool indexPerfect = false;
    Cycle indexStart = 0;
    Cycle indexDone = 0;          ///< when the index entry was available
    std::vector<Cycle> codeBeats; ///< arrival of each compressed-code beat
    std::array<Cycle, kBlockInsns> decodeDone{};
    unsigned criticalInsn = 0;    ///< block-relative index of missed word
};

/** The decompression engine's timing model. */
class DecompressorModel
{
  public:
    /**
     * @param img compressed image of the running program
     * @param mem the memory channel shared with the rest of the machine
     * @param cfg hardware configuration
     * @param stats counters registered under "decomp."
     */
    DecompressorModel(const CompressedImage &img, MainMemory &mem,
                      const DecompressorConfig &cfg, StatSet &stats);

    /**
     * Services an I-cache miss for the 32-byte line at @p line_addr.
     * @param now cycle the miss was detected
     * @return per-word availability of the requested line
     */
    LineFill handleMiss(Addr line_addr, Cycle now);

    /** Clears buffer and index-cache state (not statistics). */
    void reset();

    /** Trace of the most recent handleMiss (for timeline dumps). */
    const MissTrace &lastTrace() const { return trace_; }

    const DecompressorConfig &config() const { return cfg_; }

    /**
     * An unrecoverable in-memory corruption was hit on the fetch path.
     * Latched (reset() does not clear it): every cycle count produced
     * after the fault is meaningless, so the machine must abort the
     * run with RunStatus::DecodeFault.
     */
    bool softError() const { return softError_; }

    /** Diagnosis of the latched soft error (block and bit position). */
    const DecodeError &softErrorDetail() const { return softErrorDetail_; }

  private:
    const CompressedImage &img_;
    Decompressor decomp_;
    // Host-side memo: simulated hardware re-decodes a block on every
    // miss, but the functional result never changes, so the host reuses
    // it — and speculatively decodes ahead of the access pattern on
    // pool workers (BlockFetcher). reset() deliberately leaves the memo
    // alone — it holds pure functions of the (immutable) image, not
    // simulated state.
    BlockFetcher fetcher_;
    MainMemory &mem_;
    DecompressorConfig cfg_;
    IndexCache idxCache_;

    /**
     * Output buffers. Slot 0 is the demand buffer (the paper's single
     * 16-instruction output buffer); slots 1..prefetchDepth hold
     * speculatively decoded blocks when a prefetcher is configured.
     */
    struct BlockBuffer
    {
        bool valid = false;
        bool prefetched = false; ///< speculative fill, not yet claimed
        u32 group = 0;
        u32 block = 0;
        std::array<Cycle, kBlockInsns> ready{};
    };
    std::vector<BlockBuffer> buffers_;
    unsigned pfRotor_ = 0; ///< round-robin prefetch-slot allocator

    // Stride predictor over the demanded flat-block sequence.
    bool havePrevReq_ = false;
    u32 prevReqFlat_ = 0;
    s64 lastStride_ = 0;
    unsigned strideConf_ = 0;
    /** When the serial decode engine last finished (prefetches queue). */
    Cycle engineBusyUntil_ = 0;

    /** Decodes one block's timing: burst + serial decode from @p start. */
    std::array<Cycle, kBlockInsns> decodeTiming(u32 group, u32 block,
                                                Cycle idx_ready,
                                                BurstResult *code_out);
    /** Issues speculative decodes predicted after demanding @p flat. */
    void issuePrefetches(u32 flat, Cycle now);

    MissTrace trace_;

    bool softError_ = false;
    DecodeError softErrorDetail_;

    Counter &statMisses_;
    Counter &statBufferHits_;
    Counter &statIdxLookups_;
    Counter &statIdxHits_;
    Counter &statInsnsDecoded_;
    Counter &statPfIssued_;
    Counter &statPfHits_;
};

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_TIMING_HH
