#include "client.hh"

#include <unistd.h>

#include "common/byteio.hh"
#include "common/ipc_frame.hh"
#include "common/logging.hh"
#include "common/socket.hh"

namespace cps
{
namespace service
{

ServiceClient::~ServiceClient()
{
    close();
}

bool
ServiceClient::connect(const std::string &socket_path, long timeout_ms)
{
    ignoreSigpipe();
    close();
    fd_ = connectUnix(socket_path, timeout_ms);
    return fd_ >= 0;
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServiceClient::sendRequest(const MatrixRequestMsg &msg)
{
    if (fd_ < 0)
        return false;
    return writeFrame(fd_, kMsgMatrixRequest, encodeMatrixRequest(msg));
}

MatrixReply
ServiceClient::collect(u32 request_id, long timeout_ms)
{
    MatrixReply reply;
    if (fd_ < 0) {
        reply.error = "not connected";
        return reply;
    }
    for (;;) {
        IpcFrame frame;
        FrameReadStatus st =
            readFrame(fd_, frame, timeout_ms, kMaxReplyPayload);
        if (st != FrameReadStatus::Ok) {
            // A daemon killed mid-stream surfaces here as Eof/Torn —
            // the cells already collected are still valid (and
            // journaled daemon-side).
            reply.error = strfmt("stream ended: %s",
                                 frameReadStatusName(st));
            return reply;
        }
        switch (frame.type) {
        case kMsgCellResult: {
            CellResultMsg cell;
            if (!decodeCellResult(frame.payload, &cell)) {
                reply.error = "undecodable cell result";
                return reply;
            }
            if (cell.requestId == request_id)
                reply.cells.push_back(std::move(cell));
            break;
        }
        case kMsgMatrixEnd: {
            MatrixEndMsg end;
            if (!decodeMatrixEnd(frame.payload, &end)) {
                reply.error = "undecodable matrix end";
                return reply;
            }
            if (end.requestId != request_id)
                break;
            reply.ended = true;
            reply.end = end;
            return reply;
        }
        case kMsgOverloaded: {
            OverloadedMsg o;
            if (!decodeOverloaded(frame.payload, &o)) {
                reply.error = "undecodable overload reply";
                return reply;
            }
            if (o.requestId != request_id)
                break;
            reply.overloaded = true;
            reply.overload = std::move(o);
            return reply;
        }
        case kMsgError: {
            ByteCursor cur(frame.payload);
            u32 id = cur.get32();
            std::string text = cur.getString(cur.remaining());
            if (id != 0 && id != request_id)
                break;
            reply.error = text.empty() ? "server error" : text;
            return reply;
        }
        default:
            break; // Pong/stats for someone else: ignore
        }
    }
}

MatrixReply
ServiceClient::runMatrix(const MatrixRequestMsg &msg, long timeout_ms)
{
    if (!sendRequest(msg)) {
        MatrixReply reply;
        reply.error = "send failed";
        return reply;
    }
    return collect(msg.requestId, timeout_ms);
}

bool
ServiceClient::ping(long timeout_ms)
{
    if (fd_ < 0)
        return false;
    const std::vector<u8> token = {'h', 'i'};
    if (!writeFrame(fd_, kMsgPing, token))
        return false;
    IpcFrame frame;
    if (readFrame(fd_, frame, timeout_ms, kMaxReplyPayload) !=
        FrameReadStatus::Ok)
        return false;
    return frame.type == kMsgPong && frame.payload == token;
}

std::string
ServiceClient::stats(long timeout_ms)
{
    if (fd_ < 0)
        return std::string();
    if (!writeFrame(fd_, kMsgStatsRequest, {}))
        return std::string();
    IpcFrame frame;
    if (readFrame(fd_, frame, timeout_ms, kMaxReplyPayload) !=
            FrameReadStatus::Ok ||
        frame.type != kMsgStatsReply)
        return std::string();
    return std::string(frame.payload.begin(), frame.payload.end());
}

} // namespace service
} // namespace cps
