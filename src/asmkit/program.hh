/**
 * @file
 * The binary program image produced by the assembler and consumed by the
 * loader, the CodePack compressor and the simulator.
 *
 * The format is intentionally minimal (this is a research simulator, not
 * an OS): a text segment, a data segment, an entry point, and a symbol
 * table. There are no relocations; the assembler resolves everything.
 */

#ifndef CPS_ASMKIT_PROGRAM_HH
#define CPS_ASMKIT_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace cps
{

/** Base address of the text segment. */
constexpr Addr kTextBase = 0x00010000;
/** Base address of the data segment. */
constexpr Addr kDataBase = 0x10000000;
/** Initial stack pointer (stack grows down). */
constexpr Addr kStackTop = 0x7ffffff0;

/** A contiguous run of initialised bytes at a fixed address. */
struct Segment
{
    Addr base = 0;
    std::vector<u8> bytes;

    Addr end() const { return base + static_cast<Addr>(bytes.size()); }

    bool
    contains(Addr addr) const
    {
        return addr >= base && addr < end();
    }
};

/** A loadable program image. */
class Program
{
  public:
    Segment text;
    Segment data;
    Addr entry = kTextBase;
    std::map<std::string, Addr> symbols;

    /** Number of 32-bit instruction words in the text segment. */
    size_t
    textWords() const
    {
        return text.bytes.size() / 4;
    }

    /** The instruction word at native address @p addr (little-endian). */
    u32
    wordAt(Addr addr) const
    {
        cps_assert(text.contains(addr) && (addr & 3) == 0,
                   "wordAt outside text segment");
        size_t off = addr - text.base;
        return static_cast<u32>(text.bytes[off]) |
               (static_cast<u32>(text.bytes[off + 1]) << 8) |
               (static_cast<u32>(text.bytes[off + 2]) << 16) |
               (static_cast<u32>(text.bytes[off + 3]) << 24);
    }

    /** The instruction word at text word index @p index. */
    u32
    word(size_t index) const
    {
        return wordAt(text.base + static_cast<Addr>(index * 4));
    }

    /** Address of the symbol @p name; fatal when undefined. */
    Addr
    symbol(const std::string &name) const
    {
        auto it = symbols.find(name);
        if (it == symbols.end())
            cps_fatal("undefined symbol '%s'", name.c_str());
        return it->second;
    }
};

} // namespace cps

#endif // CPS_ASMKIT_PROGRAM_HH
