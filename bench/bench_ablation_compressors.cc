/**
 * @file
 * Ablation across compression schemes (the paper's §2 related work,
 * quantified on our benchmarks): CodePack vs CCRP-style per-byte
 * Huffman lines vs Lefurgy'97 whole-instruction dictionary.
 *
 * Two views: static compression ratio (including each scheme's table
 * overheads) and end-to-end 4-issue performance relative to native
 * code, with every scheme's decompressor on the L1 miss path.
 *
 * Expected shape (paper §2): CCRP compresses worst once its LAT is
 * charged and decodes slowest (byte-serial Huffman); dict32 compresses
 * about as well as CodePack but needs a dictionary an order of
 * magnitude larger.
 */

#include <cstdio>

#include "common/table.hh"
#include "common/threadpool.hh"
#include "compress/ccrp.hh"
#include "compress/dict32.hh"
#include "harness/engine.hh"

using namespace cps;

namespace
{

std::vector<u32>
textWords(const Program &prog)
{
    std::vector<u32> words;
    words.reserve(prog.textWords());
    for (size_t i = 0; i < prog.textWords(); ++i)
        words.push_back(prog.word(i));
    return words;
}

/** Runs a benchmark with a line-codec fetch path on the 4-issue core. */
RunResult
runWithCodec(const BenchProgram &bench, const compress::LineCodec &codec)
{
    MachineConfig cfg = baseline4Issue();
    MainMemory mem(cfg.mem);
    mem.loadSegment(bench.program.text);
    mem.loadSegment(bench.program.data);
    DecodedText text(bench.program);
    Executor exec(text, mem);
    exec.reset(bench.program);
    StatSet stats;
    compress::LineCompressedFetchPath fetch(cfg.icache, codec, mem,
                                            stats);
    DataPath data(cfg.dcache, mem, stats);
    OoOPipeline pipe(cfg.pipeline, exec, fetch, data, stats);
    return pipe.run(Suite::runInsns());
}

} // namespace

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();
    const std::vector<std::string> &names = suite.names();

    TextTable ratios;
    ratios.setTitle("Ablation A: compression ratio by scheme "
                    "(all overheads included)");
    ratios.addHeader({"Bench", "CodePack", "CCRP (byte Huffman)",
                      "dict32 (Lefurgy'97)", "dict32 entries"});

    TextTable perf;
    perf.setTitle("Ablation B: speedup over native (4-issue baseline "
                  "machine)");
    perf.addHeader({"Bench", "CodePack opt", "CCRP", "dict32"});

    // The codec fetch paths don't go through runMachine(), so the CCRP
    // and dict32 legs run on the pool directly: each task compresses one
    // benchmark under both schemes and simulates them, writing results
    // into its own slot. The CodePack legs go through the run matrix.
    struct SchemeCell
    {
        compress::CcrpImage ccrp;
        compress::Dict32Image d32;
        RunResult ccrpRun;
        RunResult d32Run;
    };
    std::vector<SchemeCell> cells(names.size());

    harness::Matrix m;
    for (const std::string &name : names) {
        const BenchProgram &bench = suite.get(name);
        m.add(bench, baseline4Issue(), insns);
        m.add(bench,
              baseline4Issue().withCodeModel(CodeModel::CodePackOptimized),
              insns);
    }

    {
        ThreadPool pool;
        pool.parallelFor(names.size(), [&](size_t i) {
            const BenchProgram &bench = suite.get(names[i]);
            auto words = textWords(bench.program);
            SchemeCell &cell = cells[i];
            cell.ccrp = compress::CcrpImage::compress(
                words, bench.program.text.base);
            cell.d32 = compress::Dict32Image::compress(
                words, bench.program.text.base);
            cell.ccrpRun = runWithCodec(bench, cell.ccrp);
            cell.d32Run = runWithCodec(bench, cell.d32);
        });
    }
    m.run();

    for (size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const BenchProgram &bench = suite.get(name);
        const SchemeCell &cell = cells[i];

        ratios.addRow(
            {name, TextTable::pct(bench.image.compressionRatio()),
             TextTable::pct(cell.ccrp.compressionRatio()),
             TextTable::pct(cell.d32.compressionRatio()),
             TextTable::grouped(cell.d32.dictionaryEntries())});

        harness::CellOutcome native = m.nextCell();
        harness::CellOutcome cp_opt = m.nextCell();

        auto rel = [&native](const RunResult &r) {
            return native.status.ok()
                       ? TextTable::fmt(
                             static_cast<double>(
                                 native.outcome.result.cycles) /
                                 static_cast<double>(r.cycles),
                             3)
                       : harness::failLabel(native.status);
        };
        perf.addRow(
            {name,
             harness::fmtCells(native, cp_opt,
                               [](const RunOutcome &n,
                                  const RunOutcome &o) {
                                   return TextTable::fmt(speedup(n, o),
                                                         3);
                               }),
             rel(cell.ccrpRun), rel(cell.d32Run)});
    }

    ratios.print();
    std::printf("\n");
    perf.print();
    return m.exitSummary();
}
