#include "threadpool.hh"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "logging.hh"

namespace cps
{

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("CPS_THREADS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && v > 0 && v <= 1024)
            return static_cast<unsigned>(v);
        envWarnOnce("CPS_THREADS", env, "an integer in [1, 1024]");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cps_assert(!stopping_, "submit on a stopping thread pool");
        queue_.push_back(std::move(task));
        ++pending_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
            if (pending_ == 0)
                allDone_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (size() <= 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // One claiming task per worker: indexes are handed out through an
    // atomic counter so an early-finishing worker picks up slack.
    auto next = std::make_shared<std::atomic<size_t>>(0);
    unsigned tasks = static_cast<unsigned>(
        std::min<size_t>(n, size()));
    for (unsigned t = 0; t < tasks; ++t) {
        submit([next, n, &fn] {
            for (;;) {
                size_t i = next->fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    wait();
}

} // namespace cps
